//! The readiness-driven frontend: a few reactor threads multiplex every
//! connection through an epoll (or `poll(2)`) event loop.
//!
//! The blocking frontend burns one OS thread (and its stack) per
//! connection; at thousands of connections the scheduler, not the
//! forwarding backend, becomes the bottleneck. This module serves the
//! same frame protocol against the same [`Router`]/shard/tracing plane
//! from `config.reactor_threads` event loops. It is the process-level
//! analogue of the paper's multi-port memory controller: many requesters
//! multiplexed onto a fixed set of banked service ports, with per-
//! requester flow control instead of unbounded buffering.
//!
//! Per connection the loop keeps a small state machine:
//!
//! * **reads** go through the resumable [`FrameReader`] — its partial-
//!   frame resume across `WouldBlock` (originally built for blocking-
//!   read timeouts) is exactly the nonblocking-read contract;
//! * **writes** go through the [`FrameWriter`] egress queue, resuming
//!   partial writes on writable events;
//! * **backpressure** is by interest, not by buffering: a connection
//!   with an in-flight submit, a saturated target shard, or more than
//!   [`EGRESS_HIGH_WATER`] bytes of unread responses has its read
//!   interest dropped — the bytes back up into the peer's socket, and
//!   server-side memory stays bounded. Read interest re-arms when the
//!   egress queue falls under [`EGRESS_LOW_WATER`] (hysteresis, so
//!   interest doesn't flap around the threshold).
//!
//! A submit that hits a full shard queue is *deferred* (at most one per
//! connection — the packets stay in the connection's scratch) and
//! retried when shard outcomes wake the loop; only a defer that outlives
//! `job_timeout` becomes a `Busy` response. That converts the blocking
//! frontend's Busy-storm under fan-in into flow control, while keeping
//! the same all-or-nothing router semantics.
//!
//! Shard threads wake the loop through the [`Reply`] waker (a self-pipe
//! registered at token 0), so outcome collection is event-driven; a
//! periodic sweep catches what wakes cannot (deadlines, idle peers, and
//! shard death noticed via channel disconnect).

use crate::frame::{
    decode_submit_into, is_submit, settle_version, FrameError, FrameReader, FrameWriter, Request,
    Response, SubmitOptions, PROTOCOL_MIN_SUPPORTED, PROTOCOL_VERSION,
};
use crate::queue::{JobOutcome, Reply, ReplyWaker};
use crate::router::ShardSplitter;
use crate::server::{
    is_fd_exhaustion, reject_over_capacity, render_stats, server_hello, Shared, ACCEPT_BACKOFF_MAX,
    ACCEPT_BACKOFF_MIN, POLL,
};
use crate::tables::{ControlOp, ControlOutcome, ControlReply};
use crate::tracing::PendingSpan;
use memsync_netapp::Ipv4Packet;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod poller;
pub(crate) mod sys;

use poller::{Event, Interest, WakeReceiver, Waker};

/// Egress bytes at which a connection's read interest is dropped: the
/// peer is not consuming responses, so the server stops consuming its
/// requests rather than buffering without bound.
pub const EGRESS_HIGH_WATER: usize = 256 * 1024;

/// Egress bytes under which read interest re-arms after a high-water
/// pause (must be well under [`EGRESS_HIGH_WATER`] so interest changes
/// don't flap around a single threshold).
pub const EGRESS_LOW_WATER: usize = EGRESS_HIGH_WATER / 4;

/// Sweep cadence for everything wakes can't deliver: work deadlines,
/// idle-peer deadlines, stats-stream pushes, and shard-death channel
/// disconnects.
const TICK: Duration = Duration::from_millis(25);

/// Poller token of the wake pipe; connection tokens are `slot + 1`.
const WAKE_TOKEN: u64 = 0;

/// Spawns the reactor frontend: `config.reactor_threads` event loops
/// (0 = one per available CPU) plus the sharding accept thread. Returns
/// every spawned handle; they all exit once `shared.stop` is raised.
pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> io::Result<Vec<JoinHandle<()>>> {
    let threads = match shared.config.reactor_threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let mut handles = Vec::with_capacity(threads + 1);
    let mut inboxes = Vec::with_capacity(threads);
    for i in 0..threads {
        let (tx, rx) = channel::<TcpStream>();
        let (waker, wake_rx) = poller::waker_pair()?;
        let waker = Arc::new(waker);
        let mut reactor = Reactor::new(Arc::clone(&shared), rx, Arc::clone(&waker), wake_rx)?;
        inboxes.push((tx, waker));
        handles.push(
            std::thread::Builder::new()
                .name(format!("memsync-reactor-{i}"))
                .spawn(move || reactor.run())
                .map_err(|e| io::Error::new(e.kind(), "reactor thread spawn failed"))?,
        );
    }
    let accept_shared = Arc::clone(&shared);
    handles.push(
        std::thread::Builder::new()
            .name("memsync-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared, &inboxes))
            .map_err(|e| io::Error::new(e.kind(), "accept thread spawn failed"))?,
    );
    Ok(handles)
}

/// Accepts connections and deals them round-robin across the reactor
/// threads, enforcing the connection cap and pausing (with backoff)
/// under fd exhaustion instead of hot-spinning.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    inboxes: &[(Sender<TcpStream>, Arc<Waker>)],
) {
    // The listener gets its own tiny poller so accept wakes on demand
    // but still observes the stop flag every POLL.
    let mut accept_poller = poller::Poller::new().ok();
    if let Some(p) = accept_poller.as_mut() {
        if p.register(
            listener.as_raw_fd(),
            0,
            Interest {
                readable: true,
                writable: false,
            },
        )
        .is_err()
        {
            accept_poller = None;
        }
    }
    let mut events = Vec::new();
    let mut next = 0usize;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !shared.stop.load(Ordering::Acquire) {
        match accept_poller.as_mut() {
            Some(p) => {
                events.clear();
                let _ = p.wait(&mut events, POLL);
            }
            // Degraded mode (poller construction failed): plain polling.
            None => std::thread::sleep(POLL),
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    backoff = ACCEPT_BACKOFF_MIN;
                    if shared.frontend.conns_open.load(Ordering::Relaxed)
                        >= shared.config.max_conns as u64
                    {
                        reject_over_capacity(stream, shared);
                        continue;
                    }
                    // Accepted sockets do not inherit the listener's
                    // nonblocking flag; set it before the reactor ever
                    // touches the stream.
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    shared.frontend.conn_opened();
                    let (tx, waker) = &inboxes[next % inboxes.len()];
                    next = next.wrapping_add(1);
                    if tx.send(stream).is_ok() {
                        waker.wake();
                    } else {
                        shared.frontend.conn_closed();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if is_fd_exhaustion(&e) => {
                    shared
                        .frontend
                        .accept_pauses
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
                Err(_) => {
                    std::thread::sleep(POLL);
                    break;
                }
            }
        }
    }
}

/// Outstanding submit: outcomes still being collected from the shards.
#[derive(Debug)]
struct PendingSubmit {
    rx: Receiver<JobOutcome>,
    jobs_left: usize,
    forwarded: u32,
    dropped: u32,
    mismatches: u32,
    span: Option<PendingSpan>,
    deadline: Instant,
}

/// Submit parked on a full shard queue; the packets stay in the
/// connection scratch and the submit retries on shard-completion wakes.
#[derive(Debug)]
struct DeferredSubmit {
    options: SubmitOptions,
    decode_ns: u64,
    blocked_shard: u16,
    deadline: Instant,
}

/// Drain/shutdown response parked until the shard fleet is quiescent.
#[derive(Debug)]
struct PendingControl {
    shutdown: bool,
    deadline: Instant,
}

/// Route mutation parked until the control worker has published the new
/// table generation and run the shard drain barrier. The worker wakes
/// the loop through the [`ControlReply`] waker, so the park costs no
/// polling — and the event loop never computes a `Dir24_8` rebuild
/// inline, so data connections on the same reactor thread keep flowing.
#[derive(Debug)]
struct PendingRoute {
    rx: Receiver<ControlOutcome>,
    deadline: Instant,
}

/// What a connection is waiting on. While non-`Idle`, reads are paused:
/// one request is in flight per connection at a time, which is what
/// bounds server-side memory per connection.
#[derive(Debug, Default)]
enum Work {
    #[default]
    Idle,
    Submit(PendingSubmit),
    Deferred(DeferredSubmit),
    Control(PendingControl),
    Route(PendingRoute),
}

/// Per-connection state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    frames: FrameReader,
    out: FrameWriter,
    /// Decoded submit scratch (also the parked packets of a deferral).
    packets: Vec<Ipv4Packet>,
    splitter: ShardSplitter,
    encoded: Vec<u8>,
    /// Protocol version the Hello handshake settled (v3 gates the
    /// control frames); `None` until greeted.
    settled: Option<u16>,
    work: Work,
    /// In the reactor's work list (dedup flag).
    queued: bool,
    /// Close once the egress queue drains.
    closing: bool,
    /// Raise the service stop flag once the egress queue drains (the
    /// connection that requested shutdown gets its `Ok` first).
    shutdown_after: bool,
    /// Current registered interest (to skip no-op poller syscalls).
    read_on: bool,
    write_on: bool,
    /// Read interest dropped for egress high-water (hysteresis state).
    read_paused_hw: bool,
    /// Idle-deadline bookkeeping: last frame/progress/write activity.
    last_activity: Instant,
    last_seen_progress: usize,
    stream_every: Option<Duration>,
    last_push: Instant,
}

impl Conn {
    fn new(stream: TcpStream, shards: usize) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            frames: FrameReader::new(),
            out: FrameWriter::new(),
            packets: Vec::new(),
            splitter: ShardSplitter::new(shards),
            encoded: Vec::new(),
            settled: None,
            work: Work::Idle,
            queued: false,
            closing: false,
            shutdown_after: false,
            read_on: true,
            write_on: false,
            read_paused_hw: false,
            last_activity: now,
            last_seen_progress: 0,
            stream_every: None,
            last_push: now,
        }
    }

    /// Encodes `rsp` onto the egress queue and opportunistically flushes.
    ///
    /// # Errors
    ///
    /// A hard write failure — the connection is dead.
    fn send(&mut self, rsp: &Response) -> io::Result<()> {
        rsp.encode_into(&mut self.encoded);
        self.out.enqueue(&self.encoded);
        self.flush().map(|_| ())
    }

    /// Drives the egress queue; `Ok(drained)`.
    fn flush(&mut self) -> io::Result<bool> {
        self.out.write(&mut &self.stream)
    }

    fn idle(&self) -> bool {
        matches!(self.work, Work::Idle)
    }
}

/// How a read step ended (computed under the connection borrow, acted on
/// after it is released).
enum ReadStep {
    Frame,
    Closed,
    Blocked,
    Failed,
}

/// One event-loop thread: owns a poller, its deal of the connections,
/// and the wake pipe shard threads signal through.
struct Reactor {
    shared: Arc<Shared>,
    poller: poller::Poller,
    waker: Arc<Waker>,
    wake_rx: WakeReceiver,
    inbox: Receiver<TcpStream>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots with outstanding work, deduplicated via `Conn::queued`.
    work: Vec<usize>,
    /// Reactor-level copy of the frame being dispatched. One memcpy per
    /// frame, so the borrow of the connection's `FrameReader` ends
    /// before dispatch mutates the rest of the connection.
    scratch: Vec<u8>,
    last_sweep: Instant,
    /// Sweep scratch (avoid per-tick allocation).
    due_push: Vec<usize>,
    due_close: Vec<usize>,
}

impl Reactor {
    fn new(
        shared: Arc<Shared>,
        inbox: Receiver<TcpStream>,
        waker: Arc<Waker>,
        wake_rx: WakeReceiver,
    ) -> io::Result<Reactor> {
        let mut poller = poller::Poller::new()?;
        poller.register(
            wake_rx.raw_fd(),
            WAKE_TOKEN,
            Interest {
                readable: true,
                writable: false,
            },
        )?;
        Ok(Reactor {
            shared,
            poller,
            waker,
            wake_rx,
            inbox,
            conns: Vec::new(),
            free: Vec::new(),
            work: Vec::new(),
            scratch: Vec::new(),
            last_sweep: Instant::now(),
            due_push: Vec::new(),
            due_close: Vec::new(),
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            // With work outstanding, cap the park so deadlines and
            // missed wakes are still observed promptly.
            let timeout = if self.work.is_empty() { POLL } else { TICK };
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller is unrecoverable for this thread; back
                // off so a persistent failure doesn't spin.
                std::thread::sleep(POLL);
            }
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.wake_rx.drain();
                    continue;
                }
                let idx = (ev.token - 1) as usize;
                if ev.writable {
                    self.drive_write(idx);
                }
                if ev.readable {
                    self.drive_read(idx);
                }
            }
            self.adopt_new_conns();
            self.process_work();
            self.sweep();
        }
        self.shutdown_all();
    }

    /// Moves accepted connections from the inbox into poller slots.
    fn adopt_new_conns(&mut self) {
        while let Ok(stream) = self.inbox.try_recv() {
            let idx = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            let token = idx as u64 + 1;
            let registered = self.poller.register(
                stream.as_raw_fd(),
                token,
                Interest {
                    readable: true,
                    writable: false,
                },
            );
            if registered.is_err() {
                self.free.push(idx);
                self.shared.frontend.conn_closed();
                continue;
            }
            self.conns[idx] = Some(Conn::new(stream, self.shared.router.shards()));
        }
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.conns.get_mut(idx).and_then(Option::as_mut)
    }

    /// Reads and dispatches frames until the connection blocks, closes,
    /// pauses (in-flight work / egress high-water), or fails.
    fn drive_read(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing || !conn.idle() || conn.out.pending() >= EGRESS_HIGH_WATER {
                break;
            }
            let step = {
                let Conn { frames, stream, .. } = conn;
                match frames.read(&mut &*stream) {
                    Ok(Some(payload)) => {
                        self.scratch.clear();
                        self.scratch.extend_from_slice(payload);
                        ReadStep::Frame
                    }
                    Ok(None) => ReadStep::Closed,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        ReadStep::Blocked
                    }
                    Err(_) => ReadStep::Failed,
                }
            };
            match step {
                ReadStep::Frame => self.handle_frame(idx),
                ReadStep::Blocked => break,
                ReadStep::Closed | ReadStep::Failed => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.update_interest(idx);
    }

    /// Flushes pending egress on a writable event.
    fn drive_write(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.out.is_empty() {
            return;
        }
        match conn.flush() {
            Ok(_) => {
                conn.last_activity = Instant::now();
                self.after_io(idx);
            }
            Err(_) => self.close_conn(idx),
        }
    }

    /// Dispatches the frame sitting in `self.scratch`. Mirrors the
    /// blocking `serve_connection` dispatch arm for arm, with the
    /// blocking waits replaced by [`Work`] states.
    fn handle_frame(&mut self, idx: usize) {
        let shared = Arc::clone(&self.shared);
        let decode_started = shared.tracer.enabled().then(Instant::now);
        let settled = {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            conn.last_activity = Instant::now();
            // Any complete client frame ends an active stats stream.
            conn.stream_every = None;
            conn.settled
        };
        // Submit fast path (same rationale as the blocking frontend:
        // decode into the connection's packet scratch, no fresh Vec).
        if settled.is_some() && is_submit(&self.scratch) {
            let decoded = {
                let (scratch, conns) = (&self.scratch, &mut self.conns);
                let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                decode_submit_into(scratch, &mut conn.packets)
            };
            match decoded {
                Ok(options) => {
                    let decode_ns = decode_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    self.start_submit(idx, options, decode_ns);
                }
                Err(e) => self.respond(idx, &Response::Error(e.to_string())),
            }
            return;
        }
        match Request::decode(&self.scratch) {
            Ok(Request::Hello {
                min_version,
                max_version,
            }) => {
                if let Some(version) = settle_version(min_version, max_version) {
                    if let Some(conn) = self.conn_mut(idx) {
                        conn.settled = Some(version);
                    }
                    self.respond(idx, &Response::Hello(server_hello(&shared, version)));
                } else {
                    self.respond_close(
                        idx,
                        &Response::Error(format!(
                            "no common protocol version: client speaks \
                             {min_version}..={max_version}, server speaks \
                             {PROTOCOL_MIN_SUPPORTED}..={PROTOCOL_VERSION}"
                        )),
                    );
                }
            }
            Ok(req) if settled.is_none() => {
                self.respond_close(
                    idx,
                    &Response::Error(format!(
                        "expected hello before {}: this server speaks protocol \
                         v{PROTOCOL_VERSION}, which negotiates at connect time",
                        req.name()
                    )),
                );
            }
            Ok(req) if req.is_control() && settled.unwrap_or(PROTOCOL_MIN_SUPPORTED) < 3 => {
                // Same settled-version gate as the blocking frontend.
                self.respond(
                    idx,
                    &Response::Error(format!(
                        "{} is a protocol-v3 control frame; this connection settled v{}",
                        req.name(),
                        settled.unwrap_or(PROTOCOL_MIN_SUPPORTED)
                    )),
                );
            }
            Ok(req) if req.is_control() && shared.draining.load(Ordering::Acquire) => {
                self.respond(
                    idx,
                    &Response::Error("draining: control plane refused".into()),
                );
            }
            Ok(Request::RouteAdd(routes)) => self.start_route(idx, ControlOp::Add(routes)),
            Ok(Request::RouteWithdraw(prefixes)) => {
                self.start_route(idx, ControlOp::Withdraw(prefixes));
            }
            Ok(Request::SwapDefault { next_hop }) => {
                self.start_route(idx, ControlOp::SwapDefault(next_hop));
            }
            Ok(Request::StatsStream { interval_ms }) => {
                if interval_ms == 0 {
                    self.respond(
                        idx,
                        &Response::Error("stats-stream interval must be nonzero".into()),
                    );
                } else {
                    if let Some(conn) = self.conn_mut(idx) {
                        conn.stream_every = Some(Duration::from_millis(u64::from(interval_ms)));
                        conn.last_push = Instant::now();
                    }
                    self.respond(idx, &Response::StatsPush(render_stats(&shared)));
                }
            }
            Ok(Request::Submit { .. }) => {
                unreachable!("greeted submits take the fast path above")
            }
            Ok(Request::Stats) => {
                self.respond(idx, &Response::Stats(render_stats(&shared)));
            }
            Ok(Request::Drain) => {
                shared.draining.store(true, Ordering::Release);
                shared.tracer.flush();
                self.park_control(idx, false);
            }
            Ok(Request::Shutdown) => {
                shared.draining.store(true, Ordering::Release);
                self.park_control(idx, true);
            }
            Ok(Request::Kill(shard)) => {
                let rsp = match shared.supervisor.shards().get(shard as usize) {
                    Some(s) => {
                        s.die.store(true, Ordering::Release);
                        Response::Ok
                    }
                    None => Response::Error(format!("no shard {shard}")),
                };
                self.respond(idx, &rsp);
            }
            Err(e @ (FrameError::Malformed(_) | FrameError::BadPacket(_))) => {
                self.respond(idx, &Response::Error(e.to_string()));
            }
        }
    }

    /// Parks a drain/shutdown until the shard fleet is quiescent; the
    /// response goes out from `poll_control`.
    fn park_control(&mut self, idx: usize, shutdown: bool) {
        let deadline = Instant::now() + self.shared.config.job_timeout;
        if let Some(conn) = self.conn_mut(idx) {
            conn.work = Work::Control(PendingControl { shutdown, deadline });
        }
        self.enqueue_work(idx);
        // Resolve immediately when already quiescent.
        self.poll_control(idx);
    }

    /// Submits a route mutation to the control worker and parks the
    /// connection; the `RouteUpdated` response goes out from
    /// `poll_route` once the worker's drain barrier completes.
    fn start_route(&mut self, idx: usize, op: ControlOp) {
        let shared = Arc::clone(&self.shared);
        let (tx, rx) = channel();
        let reply = ControlReply::with_waker(tx, Arc::clone(&self.waker) as Arc<dyn ReplyWaker>);
        if !shared.control.submit(op, reply) {
            self.respond(idx, &Response::Error("control plane stopped".into()));
            return;
        }
        let deadline = Instant::now() + shared.config.job_timeout;
        if let Some(conn) = self.conn_mut(idx) {
            conn.work = Work::Route(PendingRoute { rx, deadline });
        }
        self.enqueue_work(idx);
        self.poll_route(idx);
    }

    /// Collects a parked route mutation's outcome.
    fn poll_route(&mut self, idx: usize) {
        enum Verdict {
            Pending,
            Done(ControlOutcome),
            TimedOut,
            WorkerDied,
        }
        let verdict = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let Work::Route(p) = &mut conn.work else {
                return;
            };
            match p.rx.try_recv() {
                Ok(out) => Verdict::Done(out),
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= p.deadline {
                        Verdict::TimedOut
                    } else {
                        Verdict::Pending
                    }
                }
                Err(TryRecvError::Disconnected) => Verdict::WorkerDied,
            }
        };
        match verdict {
            Verdict::Pending => {}
            Verdict::Done(out) => {
                if let Some(conn) = self.conn_mut(idx) {
                    conn.work = Work::Idle;
                }
                self.respond(
                    idx,
                    &Response::RouteUpdated {
                        generation: out.generation,
                        routes: out.routes,
                        applied: out.applied,
                    },
                );
            }
            Verdict::TimedOut => {
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conn_mut(idx) {
                    conn.work = Work::Idle;
                }
                self.respond(idx, &Response::Error("control op timed out".into()));
            }
            Verdict::WorkerDied => {
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conn_mut(idx) {
                    conn.work = Work::Idle;
                }
                self.respond(idx, &Response::Error("control worker died; retry".into()));
            }
        }
    }

    /// Routes the decoded submit in the connection scratch, parking it
    /// as deferred work when a target shard queue is full.
    fn start_submit(&mut self, idx: usize, options: SubmitOptions, decode_ns: u64) {
        let shared = Arc::clone(&self.shared);
        if shared.draining.load(Ordering::Acquire) {
            self.respond(
                idx,
                &Response::Error("draining: new submits refused".into()),
            );
            return;
        }
        let empty = match self.conn_mut(idx) {
            Some(conn) => conn.packets.is_empty(),
            None => return,
        };
        if empty {
            self.respond(
                idx,
                &Response::Batch {
                    forwarded: 0,
                    dropped: 0,
                    mismatches: 0,
                },
            );
            return;
        }
        match self.try_submit(idx, options, decode_ns) {
            Ok(()) => {}
            Err(shard) => {
                // Full target shard: defer instead of answering Busy.
                // Reads stay paused (the Work state gates them), so the
                // server holds exactly one parked batch per connection —
                // backpressure, not a Busy-storm.
                let deadline = Instant::now() + shared.config.job_timeout;
                if let Some(conn) = self.conn_mut(idx) {
                    conn.work = Work::Deferred(DeferredSubmit {
                        options,
                        decode_ns,
                        blocked_shard: shard,
                        deadline,
                    });
                }
                shared
                    .frontend
                    .deferred_submits
                    .fetch_add(1, Ordering::Relaxed);
                shared.frontend.deferred_now.fetch_add(1, Ordering::Relaxed);
                shared.frontend.read_pauses.fetch_add(1, Ordering::Relaxed);
                self.enqueue_work(idx);
            }
        }
    }

    /// Attempts the router submit for the packets parked in the
    /// connection scratch. `Ok` means the connection is now in
    /// `Work::Submit`; `Err(shard)` hands back the full shard.
    fn try_submit(
        &mut self,
        idx: usize,
        options: SubmitOptions,
        decode_ns: u64,
    ) -> Result<(), u16> {
        let shared = Arc::clone(&self.shared);
        let (tx, rx) = channel();
        let reply = Reply::with_waker(tx, Arc::clone(&self.waker) as Arc<dyn ReplyWaker>);
        let submitted = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return Ok(());
            };
            let Conn {
                splitter, packets, ..
            } = conn;
            shared.router.submit(splitter, packets, options, &reply)
        };
        drop(reply); // the shard-held clones are now the only senders
        match submitted {
            Ok(jobs) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                let span = if shared.tracer.enabled() {
                    let (span_id, client_assigned) = shared.tracer.assign(options.span_id);
                    Some(PendingSpan {
                        span_id,
                        client_assigned,
                        decode_ns,
                        timings: Vec::new(),
                    })
                } else {
                    None
                };
                let deadline = Instant::now() + shared.config.job_timeout;
                if let Some(conn) = self.conn_mut(idx) {
                    conn.work = Work::Submit(PendingSubmit {
                        rx,
                        jobs_left: jobs,
                        forwarded: 0,
                        dropped: 0,
                        mismatches: 0,
                        span,
                        deadline,
                    });
                }
                self.enqueue_work(idx);
                // An empty split (jobs == 0) resolves on the spot.
                self.poll_submit(idx);
                Ok(())
            }
            Err(shard) => Err(shard),
        }
    }

    fn enqueue_work(&mut self, idx: usize) {
        // Field-path access keeps the `conns` borrow disjoint from the
        // `work` push below.
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            if !conn.queued {
                conn.queued = true;
                self.work.push(idx);
            }
        }
    }

    /// Drives every parked connection one step; connections whose work
    /// is still outstanding stay in the list.
    fn process_work(&mut self) {
        if self.work.is_empty() {
            return;
        }
        let list = std::mem::take(&mut self.work);
        for idx in list {
            match self.conn_mut(idx) {
                Some(conn) => conn.queued = false,
                None => continue,
            }
            match self.conn_mut(idx).map(|c| match &c.work {
                Work::Idle => 0u8,
                Work::Submit(_) => 1,
                Work::Deferred(_) => 2,
                Work::Control(_) => 3,
                Work::Route(_) => 4,
            }) {
                Some(1) => self.poll_submit(idx),
                Some(2) => self.poll_deferred(idx),
                Some(3) => self.poll_control(idx),
                Some(4) => self.poll_route(idx),
                _ => {}
            }
            if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                if !conn.idle() && !conn.queued {
                    conn.queued = true;
                    self.work.push(idx);
                }
            }
        }
    }

    /// Collects available shard outcomes for an in-flight submit,
    /// finishing (or failing) the batch when they are all in.
    fn poll_submit(&mut self, idx: usize) {
        enum Verdict {
            Pending,
            Finished,
            TimedOut,
            ShardDied,
        }
        let verdict = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let Work::Submit(p) = &mut conn.work else {
                return;
            };
            loop {
                if p.jobs_left == 0 {
                    break Verdict::Finished;
                }
                match p.rx.try_recv() {
                    Ok(out) => {
                        p.jobs_left -= 1;
                        p.forwarded += out.forwarded;
                        p.dropped += out.dropped;
                        p.mismatches += out.mismatches;
                        if let (Some(span), Some(t)) = (p.span.as_mut(), out.timings) {
                            span.timings.push(t);
                        }
                    }
                    Err(TryRecvError::Empty) => {
                        if Instant::now() >= p.deadline {
                            break Verdict::TimedOut;
                        }
                        break Verdict::Pending;
                    }
                    Err(TryRecvError::Disconnected) => break Verdict::ShardDied,
                }
            }
        };
        match verdict {
            Verdict::Pending => {}
            Verdict::Finished => {
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                let Work::Submit(p) = std::mem::take(&mut conn.work) else {
                    return;
                };
                let rsp = Response::Batch {
                    forwarded: p.forwarded,
                    dropped: p.dropped,
                    mismatches: p.mismatches,
                };
                let write_started = p.span.as_ref().map(|_| Instant::now());
                self.respond(idx, &rsp);
                if let Some(span) = p.span {
                    let write_ns = write_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    self.shared.tracer.finish(&span, write_ns);
                }
            }
            Verdict::TimedOut => {
                self.fail_submit(idx, "job timed out");
            }
            Verdict::ShardDied => {
                self.fail_submit(idx, "shard failed mid-batch; resubmit");
            }
        }
    }

    fn fail_submit(&mut self, idx: usize, msg: &str) {
        self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        if let Some(conn) = self.conn_mut(idx) {
            conn.work = Work::Idle;
        }
        self.respond(idx, &Response::Error(msg.into()));
    }

    /// Retries a deferred submit; past its deadline it becomes the
    /// `Busy` the blocking frontend would have answered immediately.
    fn poll_deferred(&mut self, idx: usize) {
        let (options, decode_ns, blocked_shard, expired) = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let Work::Deferred(d) = &conn.work else {
                return;
            };
            (
                d.options,
                d.decode_ns,
                d.blocked_shard,
                Instant::now() >= d.deadline,
            )
        };
        if expired {
            self.shared
                .frontend
                .deferred_now
                .fetch_sub(1, Ordering::Relaxed);
            self.shared.counters.busy.fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conn_mut(idx) {
                conn.work = Work::Idle;
            }
            self.respond(idx, &Response::Busy(blocked_shard));
            return;
        }
        match self.try_submit(idx, options, decode_ns) {
            Ok(()) => {
                self.shared
                    .frontend
                    .deferred_now
                    .fetch_sub(1, Ordering::Relaxed);
            }
            Err(shard) => {
                if let Some(conn) = self.conn_mut(idx) {
                    if let Work::Deferred(d) = &mut conn.work {
                        d.blocked_shard = shard;
                    }
                }
            }
        }
    }

    /// Resolves a parked drain/shutdown once every shard queue is empty,
    /// every shard idle, and no submit is deferred anywhere.
    fn poll_control(&mut self, idx: usize) {
        let (shutdown, deadline) = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let Work::Control(c) = &conn.work else {
                return;
            };
            (c.shutdown, c.deadline)
        };
        let quiesced = self.shared.supervisor.quiescent()
            && self.shared.frontend.deferred_now.load(Ordering::Relaxed) == 0;
        let expired = Instant::now() >= deadline;
        if !quiesced && !expired {
            return;
        }
        if let Some(conn) = self.conn_mut(idx) {
            conn.work = Work::Idle;
        }
        if shutdown {
            // Mirrors the blocking frontend: shutdown answers Ok even on
            // a drain timeout; the stop flag goes up once the response
            // has left this connection's egress queue.
            self.shared.tracer.flush();
            if let Some(conn) = self.conn_mut(idx) {
                conn.shutdown_after = true;
            }
            self.respond(idx, &Response::Ok);
        } else if quiesced {
            self.respond(idx, &Response::Drained);
        } else {
            self.respond(idx, &Response::Error("drain timed out".into()));
        }
    }

    /// Enqueues a response, opportunistically flushes, and re-evaluates
    /// interest. Write failures close the connection.
    fn respond(&mut self, idx: usize, rsp: &Response) {
        let (sent, high_water) = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let sent = conn.send(rsp);
            (sent, conn.out.high_water() as u64)
        };
        self.shared
            .frontend
            .egress_highwater
            .fetch_max(high_water, Ordering::Relaxed);
        if sent.is_err() {
            self.close_conn(idx);
            return;
        }
        self.after_io(idx);
    }

    /// `respond`, then close once the egress queue drains.
    fn respond_close(&mut self, idx: usize, rsp: &Response) {
        if let Some(conn) = self.conn_mut(idx) {
            conn.closing = true;
        }
        self.respond(idx, rsp);
    }

    /// Post-I/O bookkeeping: finish closes/shutdowns whose egress has
    /// drained, then recompute poller interest.
    fn after_io(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let drained = conn.out.is_empty();
        let closing = conn.closing;
        let shutdown_after = conn.shutdown_after;
        if drained && shutdown_after {
            self.shared.stop.store(true, Ordering::Release);
            self.shared.tracer.flush();
            self.close_conn(idx);
            return;
        }
        if drained && closing {
            self.close_conn(idx);
            return;
        }
        self.update_interest(idx);
    }

    /// Recomputes and applies this connection's poller interest.
    ///
    /// Read interest is the backpressure valve: off while a request is
    /// in flight (or deferred), off while the peer lets `out` back up
    /// past the high-water mark, back on under the low-water mark.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let pending = conn.out.pending();
        if pending >= EGRESS_HIGH_WATER {
            conn.read_paused_hw = true;
        } else if pending < EGRESS_LOW_WATER {
            conn.read_paused_hw = false;
        }
        let want_read = !conn.closing && conn.idle() && !conn.read_paused_hw;
        let want_write = pending > 0;
        if want_read == conn.read_on && want_write == conn.write_on {
            return;
        }
        if conn.read_on && !want_read && !conn.closing {
            self.shared
                .frontend
                .read_pauses
                .fetch_add(1, Ordering::Relaxed);
        }
        let fd = conn.stream.as_raw_fd();
        let token = idx as u64 + 1;
        let applied = self.poller.modify(
            fd,
            token,
            Interest {
                readable: want_read,
                writable: want_write,
            },
        );
        match applied {
            Ok(()) => {
                if let Some(conn) = self.conn_mut(idx) {
                    conn.read_on = want_read;
                    conn.write_on = want_write;
                }
            }
            Err(_) => self.close_conn(idx),
        }
    }

    /// Time-driven duties wakes can't cover: stats-stream pushes, idle
    /// deadlines, and (via `process_work` each loop) work deadlines.
    fn sweep(&mut self) {
        if self.last_sweep.elapsed() < TICK {
            return;
        }
        self.last_sweep = Instant::now();
        let now = Instant::now();
        let read_timeout = self.shared.config.read_timeout;
        self.due_push.clear();
        self.due_close.clear();
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            // Frame progress counts as activity, exactly like the
            // blocking frontend's stall budget.
            let progress = conn.frames.progress();
            if progress != conn.last_seen_progress {
                conn.last_seen_progress = progress;
                conn.last_activity = now;
            }
            if let Some(every) = conn.stream_every {
                // Streaming subscribers are deliberately quiet: pushes
                // are the liveness signal (a dead peer surfaces as a
                // write error), so the idle deadline does not apply.
                conn.last_activity = now;
                if now.duration_since(conn.last_push) >= every
                    && conn.idle()
                    && !conn.closing
                    && conn.out.pending() < EGRESS_HIGH_WATER
                {
                    conn.last_push = now;
                    self.due_push.push(idx);
                }
            } else if conn.idle()
                && !conn.closing
                && conn.out.is_empty()
                && now.duration_since(conn.last_activity) >= read_timeout
            {
                self.due_close.push(idx);
            }
        }
        if !self.due_push.is_empty() {
            let doc = render_stats(&self.shared);
            let due = std::mem::take(&mut self.due_push);
            for idx in &due {
                self.respond(*idx, &Response::StatsPush(doc.clone()));
            }
            self.due_push = due;
        }
        let due = std::mem::take(&mut self.due_close);
        for idx in &due {
            self.close_conn(*idx);
        }
        self.due_close = due;
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if matches!(conn.work, Work::Deferred(_)) {
            self.shared
                .frontend
                .deferred_now
                .fetch_sub(1, Ordering::Relaxed);
        }
        if conn.shutdown_after {
            // The shutdown requester vanished before its Ok drained;
            // honor the shutdown anyway.
            self.shared.stop.store(true, Ordering::Release);
            self.shared.tracer.flush();
        }
        self.shared.frontend.conn_closed();
        self.free.push(idx);
    }

    fn shutdown_all(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_exhaustion_codes_classify_and_others_do_not() {
        assert!(
            is_fd_exhaustion(&io::Error::from_raw_os_error(24)),
            "EMFILE"
        );
        assert!(
            is_fd_exhaustion(&io::Error::from_raw_os_error(23)),
            "ENFILE"
        );
        for kind in [
            io::ErrorKind::WouldBlock,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::PermissionDenied,
        ] {
            assert!(!is_fd_exhaustion(&io::Error::from(kind)), "{kind:?}");
        }
    }

    #[test]
    fn water_marks_leave_hysteresis_room() {
        const { assert!(EGRESS_LOW_WATER * 2 <= EGRESS_HIGH_WATER) };
        const { assert!(EGRESS_LOW_WATER > 0) };
    }
}
