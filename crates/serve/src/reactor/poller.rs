//! Safe readiness-polling facade over the platform backend: epoll on
//! Linux, `poll(2)` elsewhere on unix, plus the self-pipe [`Waker`] that
//! lets shard threads interrupt a parked reactor.

use crate::queue::ReplyWaker;
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use super::sys;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Readable readiness (or peer close / error).
    pub(crate) readable: bool,
    /// Writable readiness.
    pub(crate) writable: bool,
}

/// One readiness event, keyed by the registration's token.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token passed at registration time.
    pub(crate) token: u64,
    /// The fd is readable — or errored/hung up, which is surfaced as
    /// readable so the next read observes the failure.
    pub(crate) readable: bool,
    /// The fd is writable (errors surface here too, for conns that are
    /// only waiting to flush).
    pub(crate) writable: bool,
}

fn timeout_ms(timeout: Duration) -> i32 {
    // Round up so sub-millisecond timeouts don't become busy-spins.
    i32::try_from(timeout.as_millis().max(1)).unwrap_or(i32::MAX)
}

#[cfg(target_os = "linux")]
pub(crate) use linux::Poller;

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use sys::epoll;

    /// Epoll-backed poller (level-triggered).
    #[derive(Debug)]
    pub(crate) struct Poller {
        epfd: RawFd,
        buf: Vec<epoll::EpollEvent>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: epoll::create()?,
                buf: vec![epoll::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = epoll::EPOLLRDHUP;
            if interest.readable {
                m |= epoll::EPOLLIN;
            }
            if interest.writable {
                m |= epoll::EPOLLOUT;
            }
            m
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            epoll::ctl(
                self.epfd,
                epoll::EPOLL_CTL_ADD,
                fd,
                Self::mask(interest),
                token,
            )
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            epoll::ctl(
                self.epfd,
                epoll::EPOLL_CTL_MOD,
                fd,
                Self::mask(interest),
                token,
            )
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            epoll::ctl(self.epfd, epoll::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout`, appending readiness to `events`.
        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Duration,
        ) -> io::Result<()> {
            let n = epoll::wait(self.epfd, &mut self.buf, timeout_ms(timeout))?;
            for ev in &self.buf[..n] {
                // Copy fields out of the (packed) event before use.
                let bits = { ev.events };
                let token = { ev.data };
                events.push(Event {
                    token,
                    readable: bits
                        & (epoll::EPOLLIN | epoll::EPOLLERR | epoll::EPOLLHUP | epoll::EPOLLRDHUP)
                        != 0,
                    writable: bits & (epoll::EPOLLOUT | epoll::EPOLLERR | epoll::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use fallback::Poller;

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::*;
    use sys::pollsys;

    /// `poll(2)`-backed poller: a flat pollfd array plus a parallel token
    /// array, scanned linearly per wait.
    #[derive(Debug)]
    pub(crate) struct Poller {
        fds: Vec<pollsys::PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn mask(interest: Interest) -> i16 {
            let mut m = 0i16;
            if interest.readable {
                m |= pollsys::POLLIN;
            }
            if interest.writable {
                m |= pollsys::POLLOUT;
            }
            m
        }

        fn position(&self, fd: RawFd) -> io::Result<usize> {
            self.fds
                .iter()
                .position(|p| p.fd == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            if self.position(fd).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(pollsys::PollFd {
                fd,
                events: Self::mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds[i].events = Self::mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Duration,
        ) -> io::Result<()> {
            if self.fds.is_empty() {
                std::thread::sleep(timeout);
                return Ok(());
            }
            let n = pollsys::wait(&mut self.fds, timeout_ms(timeout))?;
            if n == 0 {
                return Ok(());
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                let r = p.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (pollsys::POLLIN | pollsys::POLLERR | pollsys::POLLHUP) != 0,
                    writable: r & (pollsys::POLLOUT | pollsys::POLLERR | pollsys::POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// Self-pipe waker: writing one byte to the send half makes the read
/// half (registered in the poller at [`super::WAKE_TOKEN`]) readable,
/// un-parking the reactor. Shard threads hold this through
/// [`Reply`](crate::queue::Reply), so outcome delivery interrupts the
/// poller park instead of waiting out the timeout.
#[derive(Debug)]
pub(crate) struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Signals the reactor; coalesces naturally (a full pipe means a
    /// wake is already pending, so `WouldBlock` is success).
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl ReplyWaker for Waker {
    fn wake(&self) {
        Waker::wake(self);
    }
}

/// The poller-side read half of a waker pipe.
#[derive(Debug)]
pub(crate) struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    pub(crate) fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Drains every pending wake byte (level-triggered pollers would
    /// otherwise re-report the pipe forever).
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
}

/// A connected waker pair: the `Waker` is shared with shard threads and
/// the accept loop; the receiver is registered in the owning poller.
pub(crate) fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_unparks_a_waiting_poller_and_drains() {
        let (waker, rx) = waker_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(
                rx.raw_fd(),
                7,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .unwrap();
        // Many wakes coalesce into at least one readable event.
        for _ in 0..10 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "wake pipe reports readable"
        );
        rx.drain();
        // Drained: a short wait now times out with no events.
        events.clear();
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.iter().all(|e| e.token != 7), "drain clears the pipe");
    }

    #[test]
    fn poller_tracks_interest_changes_on_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        // Write interest on an idle socket: immediately writable.
        poller
            .register(
                server.as_raw_fd(),
                3,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        // Drop write interest: an empty socket stops reporting.
        poller
            .modify(
                server.as_raw_fd(),
                3,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .unwrap();
        events.clear();
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.is_empty(), "no readiness without data or interest");
        // Peer data arrives: readable fires.
        (&client).write_all(b"x").unwrap();
        events.clear();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
