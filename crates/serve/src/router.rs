//! Flow routing: dst-prefix hashing and all-or-nothing batch submission
//! across shard queues.
//!
//! A submit batch may span several shards. Backpressure must be lossless
//! and double-count-free: either *every* per-shard sub-job is enqueued,
//! or *none* is and the client gets `Busy` (it retries the whole batch).
//! The router guarantees that by locking the target queues in ascending
//! shard order (a total order, so concurrent acceptors cannot deadlock),
//! checking every capacity, and only then committing the pushes.

use crate::frame::SubmitOptions;
use crate::queue::{Job, Reply, ShardQueue};
use memsync_netapp::Ipv4Packet;
use std::sync::Arc;
use std::time::Instant;

/// Maps a destination address to its owning shard: flows are keyed by the
/// /24 dst prefix (the same `dst >> 8` the descriptor carries), mixed
/// through a 32-bit finalizer so adjacent prefixes spread across shards.
pub fn shard_of(dst: u32, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut x = dst >> 8;
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    (x as usize) % shards
}

/// Splits a batch into per-shard groups, preserving submission order
/// within each group. Only non-empty groups are returned.
///
/// One-shot convenience over [`ShardSplitter`]; the acceptor hot path
/// holds a reusable splitter instead so steady-state splits allocate
/// nothing.
pub fn split_by_shard(packets: &[Ipv4Packet], shards: usize) -> Vec<(usize, Vec<Ipv4Packet>)> {
    let mut splitter = ShardSplitter::new(shards);
    splitter.split(packets);
    splitter
        .groups()
        .map(|(shard, group)| (shard, group.to_vec()))
        .collect()
}

/// A reusable batch splitter with one scratch buffer per shard.
///
/// `split_by_shard` allocates `shards` fresh `Vec`s per call — per submit
/// batch, on the acceptor hot path. A connection keeps one
/// `ShardSplitter` instead: `split` recycles the previous split's group
/// buffers (capacity kept), so bucketing a steady stream of batches
/// costs zero allocations.
#[derive(Debug)]
pub struct ShardSplitter {
    /// One group buffer per shard, reused across splits.
    groups: Vec<Vec<Ipv4Packet>>,
    /// Shards with non-empty groups from the last split, ascending (the
    /// router's lock-acquisition order).
    active: Vec<usize>,
}

impl ShardSplitter {
    /// A splitter bucketing into `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(shards: usize) -> ShardSplitter {
        assert!(shards > 0, "cannot split into zero shards");
        ShardSplitter {
            groups: vec![Vec::new(); shards],
            active: Vec::with_capacity(shards),
        }
    }

    /// How many shards this splitter buckets into.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// Buckets `packets` by dst-prefix hash, preserving submission order
    /// within each group. The previous split's buffers are recycled.
    pub fn split(&mut self, packets: &[Ipv4Packet]) {
        for &s in &self.active {
            self.groups[s].clear();
        }
        self.active.clear();
        for p in packets {
            let s = shard_of(p.dst, self.groups.len());
            if self.groups[s].is_empty() {
                self.active.push(s);
            }
            self.groups[s].push(*p);
        }
        self.active.sort_unstable();
    }

    /// The non-empty groups of the last split, ascending by shard.
    pub fn groups(&self) -> impl Iterator<Item = (usize, &[Ipv4Packet])> {
        self.active.iter().map(|&s| (s, self.groups[s].as_slice()))
    }
}

/// Routes submit batches onto the shard queues.
#[derive(Debug, Clone)]
pub struct Router {
    queues: Vec<Arc<ShardQueue>>,
}

impl Router {
    /// A router over one queue per shard.
    pub fn new(queues: Vec<Arc<ShardQueue>>) -> Self {
        Router { queues }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The queue of one shard.
    pub fn queue(&self, shard: usize) -> &Arc<ShardQueue> {
        &self.queues[shard]
    }

    /// Whether every shard queue is empty (drain progress check).
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Atomically submits a batch: splits by dst-prefix hash (into
    /// `splitter`'s reusable scratch), locks the target queues in shard
    /// order, and commits only if every target has room. On failure
    /// returns the first full shard and enqueues *nothing*. Returns the
    /// number of sub-jobs created on success (the acceptor collects
    /// exactly that many outcomes).
    ///
    /// # Errors
    ///
    /// `Err(shard)` when `shard`'s queue was full.
    ///
    /// # Panics
    ///
    /// Panics if `splitter` was built for a different shard count.
    pub fn submit(
        &self,
        splitter: &mut ShardSplitter,
        packets: &[Ipv4Packet],
        options: SubmitOptions,
        reply: &Reply,
    ) -> Result<usize, u16> {
        assert_eq!(
            splitter.shards(),
            self.queues.len(),
            "splitter shard count must match the router"
        );
        splitter.split(packets);
        if splitter.active.is_empty() {
            return Ok(0);
        }
        // Phase 1: acquire the target locks in ascending shard order
        // (`active` is sorted — a total order, so concurrent acceptors
        // cannot deadlock) and verify capacity under all of them.
        let mut guards = Vec::with_capacity(splitter.active.len());
        for &shard in &splitter.active {
            guards.push((shard, self.queues[shard].lock()));
        }
        for (shard, guard) in &guards {
            if guard.len() >= self.queues[*shard].capacity() {
                return Err(*shard as u16); // guards drop; nothing enqueued
            }
        }
        // Phase 2: commit while still holding every lock. The job owns
        // its packets, so each group is copied out of the scratch here —
        // one exact-size allocation per sub-job, nothing per shard count.
        let now = Instant::now();
        let n = guards.len();
        for (shard, guard) in guards.iter_mut() {
            self.queues[*shard].push_locked(
                guard,
                Job {
                    packets: splitter.groups[*shard].to_vec(),
                    options,
                    reply: reply.clone(),
                    enqueued: now,
                },
            );
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_netapp::Workload;
    use std::sync::mpsc::channel;

    #[test]
    fn shard_of_is_deterministic_and_prefix_keyed() {
        // Same /24 -> same shard regardless of host byte.
        for shards in [1usize, 2, 4, 7] {
            let a = shard_of(0xc0a8_0101, shards);
            assert_eq!(shard_of(0xc0a8_01ff, shards), a);
            assert!(a < shards);
        }
        // The workload's prefixes spread over >1 shard when there are 4.
        let w = Workload::generate(9, 200, 32);
        let mut seen = [false; 4];
        for p in &w.packets {
            seen[shard_of(p.dst, 4)] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() >= 2, "hash spreads");
    }

    #[test]
    fn split_preserves_order_and_loses_nothing() {
        let w = Workload::generate(5, 100, 16);
        let groups = split_by_shard(&w.packets, 4);
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, 100);
        for (shard, g) in &groups {
            // Every packet landed on its hashed shard, in original order.
            let expect: Vec<_> = w
                .packets
                .iter()
                .filter(|p| shard_of(p.dst, 4) == *shard)
                .copied()
                .collect();
            assert_eq!(g, &expect);
        }
    }

    #[test]
    fn splitter_reuse_matches_one_shot_splits() {
        // The same splitter run over several batches must give exactly
        // what fresh split_by_shard calls give — recycled scratch never
        // leaks packets across splits (including groups active in one
        // split and empty in the next).
        let w = Workload::generate(13, 300, 16);
        let mut splitter = ShardSplitter::new(4);
        for chunk in w.packets.chunks(70) {
            splitter.split(chunk);
            let got: Vec<(usize, Vec<Ipv4Packet>)> = splitter
                .groups()
                .map(|(shard, group)| (shard, group.to_vec()))
                .collect();
            assert_eq!(got, split_by_shard(chunk, 4));
        }
        // An empty split leaves no active groups behind.
        splitter.split(&[]);
        assert_eq!(splitter.groups().count(), 0);
    }

    #[test]
    fn submit_is_all_or_nothing_across_shards() {
        // Two shards; shard queues of capacity 1. Fill one target shard,
        // then submit a batch spanning both: nothing may be enqueued.
        let queues: Vec<_> = (0..2).map(|_| Arc::new(ShardQueue::new(1))).collect();
        let router = Router::new(queues.clone());
        let mut splitter = ShardSplitter::new(2);
        let w = Workload::generate(11, 64, 16);
        let (tx, _rx) = channel();
        let tx = Reply::new(tx);
        // Find one packet per shard.
        let p0 = *w.packets.iter().find(|p| shard_of(p.dst, 2) == 0).unwrap();
        let p1 = *w.packets.iter().find(|p| shard_of(p.dst, 2) == 1).unwrap();
        // Fill shard 1.
        assert_eq!(
            router.submit(&mut splitter, &[p1], SubmitOptions::new(), &tx),
            Ok(1)
        );
        let before0 = queues[0].len();
        // A spanning batch must refuse entirely: shard 1 is full.
        assert_eq!(
            router.submit(&mut splitter, &[p0, p1], SubmitOptions::new(), &tx),
            Err(1)
        );
        assert_eq!(queues[0].len(), before0, "shard 0 saw no partial enqueue");
        // Shard-0-only traffic still flows.
        assert_eq!(
            router.submit(&mut splitter, &[p0], SubmitOptions::new(), &tx),
            Ok(1)
        );
    }
}
