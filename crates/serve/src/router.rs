//! Flow routing: dst-prefix hashing and all-or-nothing batch submission
//! across shard queues.
//!
//! A submit batch may span several shards. Backpressure must be lossless
//! and double-count-free: either *every* per-shard sub-job is enqueued,
//! or *none* is and the client gets `Busy` (it retries the whole batch).
//! The router guarantees that by locking the target queues in ascending
//! shard order (a total order, so concurrent acceptors cannot deadlock),
//! checking every capacity, and only then committing the pushes.

use crate::frame::SubmitOptions;
use crate::queue::{Job, JobOutcome, ShardQueue};
use memsync_netapp::Ipv4Packet;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// Maps a destination address to its owning shard: flows are keyed by the
/// /24 dst prefix (the same `dst >> 8` the descriptor carries), mixed
/// through a 32-bit finalizer so adjacent prefixes spread across shards.
pub fn shard_of(dst: u32, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut x = dst >> 8;
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    (x as usize) % shards
}

/// Splits a batch into per-shard groups, preserving submission order
/// within each group. Only non-empty groups are returned.
pub fn split_by_shard(packets: &[Ipv4Packet], shards: usize) -> Vec<(usize, Vec<Ipv4Packet>)> {
    let mut groups: Vec<Vec<Ipv4Packet>> = vec![Vec::new(); shards];
    for p in packets {
        groups[shard_of(p.dst, shards)].push(*p);
    }
    groups
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .collect()
}

/// Routes submit batches onto the shard queues.
#[derive(Debug, Clone)]
pub struct Router {
    queues: Vec<Arc<ShardQueue>>,
}

impl Router {
    /// A router over one queue per shard.
    pub fn new(queues: Vec<Arc<ShardQueue>>) -> Self {
        Router { queues }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The queue of one shard.
    pub fn queue(&self, shard: usize) -> &Arc<ShardQueue> {
        &self.queues[shard]
    }

    /// Whether every shard queue is empty (drain progress check).
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Atomically submits a batch: splits by dst-prefix hash, locks the
    /// target queues in shard order, and commits only if every target has
    /// room. On failure returns the first full shard and enqueues
    /// *nothing*. Returns the number of sub-jobs created on success (the
    /// acceptor collects exactly that many outcomes).
    ///
    /// # Errors
    ///
    /// `Err(shard)` when `shard`'s queue was full.
    pub fn submit(
        &self,
        packets: &[Ipv4Packet],
        options: SubmitOptions,
        reply: &Sender<JobOutcome>,
    ) -> Result<usize, u16> {
        let groups = split_by_shard(packets, self.queues.len());
        if groups.is_empty() {
            return Ok(0);
        }
        // Phase 1: acquire the target locks in ascending shard order and
        // verify capacity under all of them.
        let mut guards = Vec::with_capacity(groups.len());
        for (shard, _) in &groups {
            guards.push((*shard, self.queues[*shard].lock()));
        }
        for (shard, guard) in &guards {
            if guard.len() >= self.queues[*shard].capacity() {
                return Err(*shard as u16); // guards drop; nothing enqueued
            }
        }
        // Phase 2: commit while still holding every lock.
        let now = Instant::now();
        let n = groups.len();
        for ((shard, group), (gshard, guard)) in groups.into_iter().zip(guards.iter_mut()) {
            debug_assert_eq!(shard, *gshard);
            self.queues[shard].push_locked(
                guard,
                Job {
                    packets: group,
                    options,
                    reply: reply.clone(),
                    enqueued: now,
                },
            );
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_netapp::Workload;
    use std::sync::mpsc::channel;

    #[test]
    fn shard_of_is_deterministic_and_prefix_keyed() {
        // Same /24 -> same shard regardless of host byte.
        for shards in [1usize, 2, 4, 7] {
            let a = shard_of(0xc0a8_0101, shards);
            assert_eq!(shard_of(0xc0a8_01ff, shards), a);
            assert!(a < shards);
        }
        // The workload's prefixes spread over >1 shard when there are 4.
        let w = Workload::generate(9, 200, 32);
        let mut seen = [false; 4];
        for p in &w.packets {
            seen[shard_of(p.dst, 4)] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() >= 2, "hash spreads");
    }

    #[test]
    fn split_preserves_order_and_loses_nothing() {
        let w = Workload::generate(5, 100, 16);
        let groups = split_by_shard(&w.packets, 4);
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, 100);
        for (shard, g) in &groups {
            // Every packet landed on its hashed shard, in original order.
            let expect: Vec<_> = w
                .packets
                .iter()
                .filter(|p| shard_of(p.dst, 4) == *shard)
                .copied()
                .collect();
            assert_eq!(g, &expect);
        }
    }

    #[test]
    fn submit_is_all_or_nothing_across_shards() {
        // Two shards; shard queues of capacity 1. Fill one target shard,
        // then submit a batch spanning both: nothing may be enqueued.
        let queues: Vec<_> = (0..2).map(|_| Arc::new(ShardQueue::new(1))).collect();
        let router = Router::new(queues.clone());
        let w = Workload::generate(11, 64, 16);
        let (tx, _rx) = channel();
        // Find one packet per shard.
        let p0 = *w.packets.iter().find(|p| shard_of(p.dst, 2) == 0).unwrap();
        let p1 = *w.packets.iter().find(|p| shard_of(p.dst, 2) == 1).unwrap();
        // Fill shard 1.
        assert_eq!(router.submit(&[p1], SubmitOptions::new(), &tx), Ok(1));
        let before0 = queues[0].len();
        // A spanning batch must refuse entirely: shard 1 is full.
        assert_eq!(router.submit(&[p0, p1], SubmitOptions::new(), &tx), Err(1));
        assert_eq!(queues[0].len(), before0, "shard 0 saw no partial enqueue");
        // Shard-0-only traffic still flows.
        assert_eq!(router.submit(&[p0], SubmitOptions::new(), &tx), Ok(1));
    }
}
