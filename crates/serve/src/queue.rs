//! Bounded per-shard job queues with explicit backpressure.
//!
//! Each shard owns one [`ShardQueue`]: acceptor threads push whole jobs
//! (`try`-only — a full queue is a [`crate::frame::Response::Busy`], never
//! unbounded buffering), the shard thread pops them with a timeout so it
//! can notice drain/stop flags. The queue outlives the shard thread: when
//! the supervisor restarts a panicked shard, queued jobs survive and are
//! processed by the replacement.

use crate::frame::SubmitOptions;
use crate::tracing::StageTimings;
use memsync_netapp::Ipv4Packet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The result a shard reports for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobOutcome {
    /// Packets the oracle classified as forwarded.
    pub forwarded: u32,
    /// Packets dropped (TTL expiry or no route).
    pub dropped: u32,
    /// Verify-mode mismatches between simulator egress and the model.
    pub mismatches: u32,
    /// Shard-side stage timings, present only when request tracing is
    /// enabled (the acceptor folds these into the batch's span).
    pub timings: Option<StageTimings>,
}

/// One unit of shard work: a sub-batch of packets that all hash to the
/// same shard, plus the channel the outcome goes back on.
#[derive(Debug)]
pub struct Job {
    /// Packets to forward, in submission order.
    pub packets: Vec<Ipv4Packet>,
    /// Typed submit options (verify mode, future flags).
    pub options: SubmitOptions,
    /// Outcome channel back to the accepting connection. Dropping the
    /// job (e.g. a shard panic mid-batch) drops the sender, which the
    /// acceptor observes as a failed submit — never a silent loss.
    pub reply: Sender<JobOutcome>,
    /// When the job entered the queue (service-latency attribution).
    pub enqueued: Instant,
}

/// A bounded MPSC job queue (mutex + condvar; the push side is `try`-only
/// so producers never block on a full queue).
#[derive(Debug)]
pub struct ShardQueue {
    inner: Mutex<VecDeque<Job>>,
    available: Condvar,
    cap: usize,
    /// Highest depth ever observed at push time (stats frame).
    high_water: AtomicUsize,
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A shard panicking while the acceptor holds no job invariant worth
    // protecting: the queue content stays valid, so recover the guard.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ShardQueue {
    /// Creates a queue holding at most `cap` jobs.
    pub fn new(cap: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
            available: Condvar::new(),
            cap,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Capacity in jobs.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        unpoison(self.inner.lock()).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth ever observed at push time.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Locks the queue for a multi-queue atomic submit (see
    /// [`crate::router::Router::submit`]). The guard exposes capacity
    /// checking and pushing while held.
    pub(crate) fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        unpoison(self.inner.lock())
    }

    /// Pushes under an already-held guard, updating the high-water mark
    /// and waking the shard.
    pub(crate) fn push_locked(&self, guard: &mut MutexGuard<'_, VecDeque<Job>>, job: Job) {
        guard.push_back(job);
        let depth = guard.len();
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Tries to push one job; `Err(job)` hands it back when the queue is
    /// full (the caller answers `Busy`).
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut g = self.lock();
        if g.len() >= self.cap {
            return Err(job);
        }
        self.push_locked(&mut g, job);
        Ok(())
    }

    /// Pops one job, waiting up to `timeout` — shards poll this so stop
    /// and kill flags are observed between activations.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Job> {
        self.pop_timeout_inner(timeout, None)
    }

    /// Like [`ShardQueue::pop_timeout`], but clears `idle` **before the
    /// queue lock is released** whenever a job comes out. Drain checks
    /// `queue.is_empty() && idle` (in that order, and `is_empty` takes
    /// this same lock), so it can never observe the window where the pop
    /// emptied the queue but the shard has not yet marked itself busy.
    pub fn pop_timeout_busy(&self, timeout: Duration, idle: &AtomicBool) -> Option<Job> {
        self.pop_timeout_inner(timeout, Some(idle))
    }

    fn pop_timeout_inner(&self, timeout: Duration, idle: Option<&AtomicBool>) -> Option<Job> {
        let take = |g: &mut VecDeque<Job>| {
            let job = g.pop_front();
            if job.is_some() {
                if let Some(idle) = idle {
                    idle.store(false, Ordering::Release);
                }
            }
            job
        };
        let mut g = unpoison(self.inner.lock());
        if let Some(job) = take(&mut g) {
            return Some(job);
        }
        // One lock held into the wait: a push between the check and the
        // wait cannot slip its notification past us.
        let (mut g, _) = self
            .available
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        take(&mut g)
    }

    /// Pops without waiting (batch coalescing inside one activation).
    pub fn try_pop(&self) -> Option<Job> {
        unpoison(self.inner.lock()).pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(n: usize) -> (Job, std::sync::mpsc::Receiver<JobOutcome>) {
        let (tx, rx) = channel();
        (
            Job {
                packets: vec![Ipv4Packet::new(1, 2, 10, 6, 40); n],
                options: SubmitOptions::new(),
                reply: tx,
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn bounded_push_reports_full() {
        let q = ShardQueue::new(2);
        let (a, _ra) = job(1);
        let (b, _rb) = job(1);
        let (c, _rc) = job(1);
        assert!(q.try_push(a).is_ok());
        assert!(q.try_push(b).is_ok());
        let rejected = q.try_push(c).unwrap_err();
        assert_eq!(rejected.packets.len(), 1, "job handed back intact");
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        // Draining one slot reopens the queue.
        assert!(q.try_pop().is_some());
        assert!(q.try_push(rejected).is_ok());
    }

    #[test]
    fn busy_pop_clears_idle_with_the_job_never_without() {
        let q = ShardQueue::new(4);
        let idle = AtomicBool::new(true);
        // Timing out empty must leave the idle flag alone.
        assert!(q
            .pop_timeout_busy(Duration::from_millis(5), &idle)
            .is_none());
        assert!(idle.load(Ordering::Acquire));
        let (a, _ra) = job(1);
        q.try_push(a).unwrap();
        // Popping a job marks the shard busy before the caller even sees
        // it — so an observer that finds the queue empty afterwards is
        // guaranteed to also find idle == false.
        assert!(q
            .pop_timeout_busy(Duration::from_millis(100), &idle)
            .is_some());
        assert!(q.is_empty());
        assert!(!idle.load(Ordering::Acquire));
    }

    #[test]
    fn pop_timeout_sees_pushes_and_times_out_empty() {
        let q = ShardQueue::new(4);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
        let (a, _ra) = job(3);
        q.try_push(a).unwrap();
        let got = q.pop_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.packets.len(), 3);
        assert!(q.is_empty());
    }
}
