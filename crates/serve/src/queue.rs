//! Bounded per-shard job queues with explicit backpressure.
//!
//! Each shard owns one [`ShardQueue`]: acceptor threads push whole jobs
//! (`try`-only — a full queue is a [`crate::frame::Response::Busy`], never
//! unbounded buffering), the shard thread pops them with a timeout so it
//! can notice drain/stop flags. The queue outlives the shard thread: when
//! the supervisor restarts a panicked shard, queued jobs survive and are
//! processed by the replacement.

use crate::frame::SubmitOptions;
use crate::tracing::StageTimings;
use memsync_netapp::Ipv4Packet;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{SendError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The result a shard reports for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobOutcome {
    /// Packets the oracle classified as forwarded.
    pub forwarded: u32,
    /// Packets dropped (TTL expiry or no route).
    pub dropped: u32,
    /// Verify-mode mismatches between simulator egress and the model.
    pub mismatches: u32,
    /// Shard-side stage timings, present only when request tracing is
    /// enabled (the acceptor folds these into the batch's span).
    pub timings: Option<StageTimings>,
}

/// Wakes a frontend when a job outcome becomes observable.
///
/// The blocking frontend parks each connection thread on its outcome
/// channel, so delivery alone unblocks it. A readiness-driven frontend
/// (the reactor) multiplexes thousands of connections on one thread that
/// parks in the poller — an mpsc send cannot interrupt that park. Shards
/// are frontend-agnostic: they call [`Reply::send`], and the reply wakes
/// whatever registered interest. The trait lives here (not in the
/// reactor) so the queue layer carries no dependency on any particular
/// frontend's poller type.
pub trait ReplyWaker: Send + Sync + fmt::Debug {
    /// Signal the owning frontend that an outcome (or a channel close)
    /// is ready to collect. Must be nonblocking and safe to call from a
    /// shard thread; spurious calls are allowed.
    fn wake(&self);
}

/// The outcome path of one job: the mpsc sender the shard reports on,
/// plus an optional waker for event-driven frontends.
///
/// The channel is kept (rather than replaced by the waker) because its
/// disconnect semantics carry a signal a bare callback cannot: a shard
/// that panics mid-batch *drops* its jobs, and the acceptor observes the
/// hung-up channel as a failed submit — never a silent loss. The waker
/// only fires on delivery and on drop, so disconnect detection must also
/// run from a periodic sweep on the frontend side.
#[derive(Clone)]
pub struct Reply {
    tx: Sender<JobOutcome>,
    waker: Option<Arc<dyn ReplyWaker>>,
}

impl Reply {
    /// A reply with no waker — for frontends that block on the receiver.
    pub fn new(tx: Sender<JobOutcome>) -> Reply {
        Reply { tx, waker: None }
    }

    /// A reply that calls `waker` after every outcome delivery (and when
    /// the last clone drops, covering shard-death mid-batch).
    pub fn with_waker(tx: Sender<JobOutcome>, waker: Arc<dyn ReplyWaker>) -> Reply {
        Reply {
            tx,
            waker: Some(waker),
        }
    }

    /// Delivers one outcome, then wakes the frontend (if any waker is
    /// attached). The send error is the receiver having hung up — the
    /// acceptor gave up on the batch — which callers may ignore.
    ///
    /// # Errors
    ///
    /// `SendError` when the receiving frontend already dropped the
    /// channel (e.g. the job outlived its connection).
    pub fn send(&self, outcome: JobOutcome) -> Result<(), SendError<JobOutcome>> {
        let sent = self.tx.send(outcome);
        if let Some(w) = &self.waker {
            w.wake();
        }
        sent
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        // A dropped clone may be the channel's last sender (shard panic
        // unwinding its queued jobs): wake so the frontend promptly sees
        // the disconnect instead of waiting for its sweep tick. Spurious
        // wakes from ordinary drops are harmless.
        if let Some(w) = &self.waker {
            w.wake();
        }
    }
}

impl fmt::Debug for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reply")
            .field("waker", &self.waker.is_some())
            .finish_non_exhaustive()
    }
}

/// One unit of shard work: a sub-batch of packets that all hash to the
/// same shard, plus the channel the outcome goes back on.
#[derive(Debug)]
pub struct Job {
    /// Packets to forward, in submission order.
    pub packets: Vec<Ipv4Packet>,
    /// Typed submit options (verify mode, future flags).
    pub options: SubmitOptions,
    /// Outcome path back to the accepting connection. Dropping the job
    /// (e.g. a shard panic mid-batch) drops the reply, which the
    /// acceptor observes as a failed submit — never a silent loss.
    pub reply: Reply,
    /// When the job entered the queue (service-latency attribution).
    pub enqueued: Instant,
}

/// A bounded MPSC job queue (mutex + condvar; the push side is `try`-only
/// so producers never block on a full queue).
#[derive(Debug)]
pub struct ShardQueue {
    inner: Mutex<VecDeque<Job>>,
    available: Condvar,
    cap: usize,
    /// Highest depth ever observed at push time (stats frame).
    high_water: AtomicUsize,
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A shard panicking while the acceptor holds no job invariant worth
    // protecting: the queue content stays valid, so recover the guard.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ShardQueue {
    /// Creates a queue holding at most `cap` jobs.
    pub fn new(cap: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
            available: Condvar::new(),
            cap,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Capacity in jobs.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        unpoison(self.inner.lock()).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth ever observed at push time.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Locks the queue for a multi-queue atomic submit (see
    /// [`crate::router::Router::submit`]). The guard exposes capacity
    /// checking and pushing while held.
    pub(crate) fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        unpoison(self.inner.lock())
    }

    /// Pushes under an already-held guard, updating the high-water mark
    /// and waking the shard.
    pub(crate) fn push_locked(&self, guard: &mut MutexGuard<'_, VecDeque<Job>>, job: Job) {
        guard.push_back(job);
        let depth = guard.len();
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Tries to push one job; `Err(job)` hands it back when the queue is
    /// full (the caller answers `Busy`).
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut g = self.lock();
        if g.len() >= self.cap {
            return Err(job);
        }
        self.push_locked(&mut g, job);
        Ok(())
    }

    /// Pops one job, waiting up to `timeout` — shards poll this so stop
    /// and kill flags are observed between activations.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Job> {
        self.pop_timeout_inner(timeout, None)
    }

    /// Like [`ShardQueue::pop_timeout`], but clears `idle` **before the
    /// queue lock is released** whenever a job comes out. Drain checks
    /// `queue.is_empty() && idle` (in that order, and `is_empty` takes
    /// this same lock), so it can never observe the window where the pop
    /// emptied the queue but the shard has not yet marked itself busy.
    pub fn pop_timeout_busy(&self, timeout: Duration, idle: &AtomicBool) -> Option<Job> {
        self.pop_timeout_inner(timeout, Some(idle))
    }

    fn pop_timeout_inner(&self, timeout: Duration, idle: Option<&AtomicBool>) -> Option<Job> {
        let take = |g: &mut VecDeque<Job>| {
            let job = g.pop_front();
            if job.is_some() {
                if let Some(idle) = idle {
                    idle.store(false, Ordering::Release);
                }
            }
            job
        };
        let mut g = unpoison(self.inner.lock());
        if let Some(job) = take(&mut g) {
            return Some(job);
        }
        // One lock held into the wait: a push between the check and the
        // wait cannot slip its notification past us.
        let (mut g, _) = self
            .available
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        take(&mut g)
    }

    /// Pops without waiting (batch coalescing inside one activation).
    pub fn try_pop(&self) -> Option<Job> {
        unpoison(self.inner.lock()).pop_front()
    }

    /// Wakes the shard even though no job was pushed. The control plane
    /// uses this after publishing a new table generation: a shard parked
    /// in [`ShardQueue::pop_timeout`] wakes, finds the queue empty, and
    /// falls through to its per-iteration generation check — so the
    /// drain-barrier acknowledgement arrives in microseconds instead of
    /// waiting out the poll timeout. (`pop_timeout_inner` waits on the
    /// condvar at most once, so a wake with an empty queue returns `None`
    /// promptly rather than re-parking.)
    pub fn notify(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(n: usize) -> (Job, std::sync::mpsc::Receiver<JobOutcome>) {
        let (tx, rx) = channel();
        (
            Job {
                packets: vec![Ipv4Packet::new(1, 2, 10, 6, 40); n],
                options: SubmitOptions::new(),
                reply: Reply::new(tx),
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn bounded_push_reports_full() {
        let q = ShardQueue::new(2);
        let (a, _ra) = job(1);
        let (b, _rb) = job(1);
        let (c, _rc) = job(1);
        assert!(q.try_push(a).is_ok());
        assert!(q.try_push(b).is_ok());
        let rejected = q.try_push(c).unwrap_err();
        assert_eq!(rejected.packets.len(), 1, "job handed back intact");
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        // Draining one slot reopens the queue.
        assert!(q.try_pop().is_some());
        assert!(q.try_push(rejected).is_ok());
    }

    #[test]
    fn busy_pop_clears_idle_with_the_job_never_without() {
        let q = ShardQueue::new(4);
        let idle = AtomicBool::new(true);
        // Timing out empty must leave the idle flag alone.
        assert!(q
            .pop_timeout_busy(Duration::from_millis(5), &idle)
            .is_none());
        assert!(idle.load(Ordering::Acquire));
        let (a, _ra) = job(1);
        q.try_push(a).unwrap();
        // Popping a job marks the shard busy before the caller even sees
        // it — so an observer that finds the queue empty afterwards is
        // guaranteed to also find idle == false.
        assert!(q
            .pop_timeout_busy(Duration::from_millis(100), &idle)
            .is_some());
        assert!(q.is_empty());
        assert!(!idle.load(Ordering::Acquire));
    }

    #[test]
    fn reply_wakes_on_send_and_on_drop() {
        #[derive(Debug, Default)]
        struct CountWaker(std::sync::atomic::AtomicUsize);
        impl ReplyWaker for CountWaker {
            fn wake(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let waker = Arc::new(CountWaker::default());
        let (tx, rx) = channel();
        let reply = Reply::with_waker(tx, Arc::clone(&waker) as Arc<dyn ReplyWaker>);
        assert!(reply.send(JobOutcome::default()).is_ok());
        assert_eq!(waker.0.load(Ordering::Relaxed), 1, "send wakes");
        assert!(rx.try_recv().is_ok());
        // A dropped clone wakes too — that is how a frontend learns about
        // shard death (the job's reply drops without ever sending).
        drop(reply.clone());
        assert_eq!(waker.0.load(Ordering::Relaxed), 2, "drop wakes");
        drop(reply);
        assert!(rx.recv().is_err(), "channel disconnects after last drop");
    }

    #[test]
    fn pop_timeout_sees_pushes_and_times_out_empty() {
        let q = ShardQueue::new(4);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
        let (a, _ra) = job(3);
        q.try_push(a).unwrap();
        let got = q.pop_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.packets.len(), 3);
        assert!(q.is_empty());
    }
}
