//! # memsync-serve — a sharded, batching packet-forwarding service
//!
//! The paper's evaluation vehicle is a two-port IP packet-forwarding
//! application fed by probabilistic traffic; everything in this repository
//! so far runs that application against pre-generated in-memory traces.
//! This crate is the front end that turns it into a network service: a
//! multi-threaded TCP server that runs compiled hic forwarding systems as
//! N sharded [`memsync_sim::System`] instances and forwards real packets
//! through them — the same "many independent requesters multiplexed onto
//! a fixed set of ports with bounded latency" problem the memory
//! organizations solve on-chip, lifted to the process boundary.
//!
//! Architecture (std-only — no async runtime, the workspace builds
//! offline):
//!
//! * [`frame`] — the length-prefixed binary frame protocol (`Hello`
//!   version negotiation / submit packet batch / query stats / drain /
//!   shutdown / fault-inject kill, plus the protocol-v3 control frames:
//!   route add / route withdraw / default swap);
//! * [`tables`] — the generation-swapped (RCU-style) route tables behind
//!   the v3 control plane: a single writer compiles and publishes whole
//!   fresh tables, shard readers follow one atomic generation counter
//!   lock-free, and old generations retire only after every shard
//!   acknowledges a drain barrier;
//! * [`backend`] — the pluggable [`backend::ForwardingBackend`] trait and
//!   its three engines: cycle-accurate [`backend::SimBackend`] (the
//!   reference), functional [`backend::FastBackend`] (the compiled fast
//!   path), and [`backend::DifferentialBackend`] (both, cross-checked
//!   frame by frame);
//! * [`pipeline`] — the software model of the compiled forwarding
//!   pipeline (expected egress frames per descriptor) and the
//!   [`memsync_netapp::Workload::reference_forward`]-style FIB oracle
//!   behind the per-packet `verify` mode;
//! * [`queue`] — bounded per-shard job queues with explicit backpressure:
//!   queue-full means a `Busy` response, never unbounded buffering;
//! * [`router`] — dst-prefix flow hashing and all-or-nothing multi-shard
//!   batch submission;
//! * [`shard`] — shard threads batching up to K packets per simulator
//!   activation to amortize per-`step()` overhead;
//! * [`supervisor`] — restarts a panicked shard on its surviving queue
//!   and counts `shard_restarts`;
//! * [`server`] — the TCP acceptor loop, per-connection read/write
//!   deadlines, graceful drain (in-flight packets complete, new submits
//!   refused);
//! * [`stats`] — per-shard [`memsync_trace::MetricsRegistry`] instances
//!   merged into one stats frame (throughput, queue-depth high-water,
//!   batch-size histogram, p50/p99 service latency);
//! * [`snapshot`] — the typed [`snapshot::StatsSnapshot`] decode of the
//!   stats frame (a dependency-free JSON parser);
//! * [`tracing`] — request-scoped spans: per-stage timings from decode to
//!   socket write, sampled span rings, live stage histograms, and JSONL
//!   span export (`serve --trace-spans`); zero-cost when disabled;
//! * [`client`] — a blocking client used by the `loadgen` bin, the
//!   loopback tests, and the self-timing harness; built via
//!   [`Client::builder`], it negotiates the protocol version and backend
//!   capabilities at connect time.
//!
//! The wire protocol, backpressure semantics, and `BENCH_serve.json`
//! schema are documented in `EXPERIMENTS.md` ("Serving traffic").

#![warn(missing_docs)]
// `deny` (not `forbid`): the reactor's syscall shim is the one audited
// `#![allow(unsafe_code)]` island — everything else stays safe Rust.
#![deny(unsafe_code)]

pub mod backend;
pub mod client;
pub mod frame;
pub mod pipeline;
pub mod queue;
#[cfg(unix)]
pub mod reactor;
pub mod router;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod supervisor;
pub mod tables;
pub mod tracing;

pub use backend::{BackendKind, ForwardingBackend};
pub use client::{Client, ClientError, RouteUpdate};
pub use frame::{Request, Response, ServerHello, SubmitOptions, PROTOCOL_VERSION};
pub use server::Server;
pub use snapshot::StatsSnapshot;
pub use tables::EpochTables;
pub use tracing::{ServeTracer, TracingConfig};

use memsync_core::{OptLevel, OrganizationKind};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Which connection-handling frontend the server runs.
///
/// Both frontends speak the same protocol against the same
/// router/shard/tracing plane; they differ only in how connections are
/// multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendKind {
    /// One blocking OS thread per connection (the original frontend).
    /// Simple and fine up to a few hundred connections.
    #[default]
    Threads,
    /// Readiness-driven event loop ([`reactor`]): a few reactor threads
    /// multiplex every connection via epoll (`poll(2)` on non-Linux
    /// unix), sized for thousands of concurrent connections. Unix-only.
    Reactor,
}

impl fmt::Display for FrontendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FrontendKind::Threads => "threads",
            FrontendKind::Reactor => "reactor",
        })
    }
}

impl FromStr for FrontendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(FrontendKind::Threads),
            "reactor" => Ok(FrontendKind::Reactor),
            other => Err(format!(
                "unknown frontend '{other}' (expected threads|reactor)"
            )),
        }
    }
}

/// Raises the process's soft open-file limit to the hard limit and
/// returns the resulting soft limit (0 when the limit could not even be
/// read). High-fan-in runs (`--frontend reactor`, `loadgen --conns`)
/// call this so 5k+ sockets don't trip the default 1024-fd soft limit.
/// No-op returning 0 on non-unix platforms.
pub fn raise_fd_limit() -> u64 {
    #[cfg(unix)]
    {
        reactor::sys::raise_nofile_limit()
    }
    #[cfg(not(unix))]
    {
        0
    }
}

/// Service configuration. `Default` matches the acceptance setup:
/// 4 shards of the egress-4 forwarding application under the arbitrated
/// organization, 64-route synthetic FIB.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard simulator instances (each its own thread).
    pub shards: usize,
    /// Egress consumer count of the compiled forwarding application.
    pub egress: usize,
    /// Memory organization the shards simulate (relevant to the `sim`
    /// and `differential` backends; the fast path is organization-free).
    pub organization: OrganizationKind,
    /// Which forwarding backend each shard runs.
    pub backend: BackendKind,
    /// Middle-end optimization level the `sim` and `differential`
    /// backends compile the application at (the fast path has no FSMs).
    pub opt: OptLevel,
    /// Route count of the synthetic FIB (must match the loadgen's).
    pub routes: usize,
    /// Bounded shard queue capacity, in jobs. A full queue refuses the
    /// whole submit with `Busy`.
    pub queue_cap: usize,
    /// Maximum packets coalesced into one simulator activation.
    pub batch_max: usize,
    /// Per-connection idle read deadline; a connection that stays silent
    /// this long is closed.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// How long an acceptor waits for shard outcomes before reporting a
    /// submit as failed.
    pub job_timeout: Duration,
    /// Test hook: artificial per-activation delay, to make backpressure
    /// observable deterministically in the loopback tests.
    pub shard_throttle: Option<Duration>,
    /// Request tracing (spans, stage histograms, JSONL export). Disabled
    /// by default; disabled means zero instrumentation cost.
    pub tracing: TracingConfig,
    /// Connection-handling frontend (blocking thread-per-connection or
    /// the epoll reactor).
    pub frontend: FrontendKind,
    /// Reactor event-loop thread count; 0 means one per available CPU.
    /// Ignored by the `threads` frontend.
    pub reactor_threads: usize,
    /// Maximum concurrently open client connections (both frontends).
    /// Connections over the cap receive a protocol `Error` frame and are
    /// closed, keeping fd headroom for the ones already being served.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            egress: 4,
            organization: OrganizationKind::Arbitrated,
            backend: BackendKind::Sim,
            opt: OptLevel::O0,
            routes: 64,
            queue_cap: 64,
            batch_max: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            job_timeout: Duration::from_secs(60),
            shard_throttle: None,
            tracing: TracingConfig::default(),
            frontend: FrontendKind::default(),
            reactor_threads: 0,
            max_conns: 10_000,
        }
    }
}
