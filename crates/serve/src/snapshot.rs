//! Typed decode of the stats frame.
//!
//! The server renders its merged stats as one JSON document
//! ([`crate::stats::stats_json`]); clients used to get that back as a raw
//! `String` and grep it. [`StatsSnapshot`] decodes the document into a
//! struct (via the dependency-free [`memsync_trace::Json`] parser) so
//! callers — `loadgen --verify`, the loopback tests, operators' tooling —
//! read `snapshot.lost_updates`, not string matches. The raw document
//! stays reachable through [`crate::Client::stats_raw`] for humans and
//! log pipelines.

use crate::backend::BackendKind;
use memsync_trace::Json;

/// Decoded per-shard counters from the `per_shard` array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u64,
    /// Packets this shard executed.
    pub packets: u64,
    /// Packets the oracle classified as forwarded.
    pub forwarded: u64,
    /// Packets dropped (TTL expiry or no route).
    pub dropped: u64,
    /// Verify-mode mismatches.
    pub mismatches: u64,
    /// Guarded-location overwrites observed by this shard's backend.
    pub lost_updates: u64,
    /// Batch activations.
    pub batches: u64,
    /// Simulator cycles consumed (0 under the fast backend).
    pub sim_cycles: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Highest queue depth ever observed at push time.
    pub queue_depth_highwater: u64,
}

/// The merged stats frame, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Shard count.
    pub shards: u64,
    /// The forwarding backend serving this instance.
    pub backend: Option<BackendKind>,
    /// Server uptime in seconds.
    pub uptime_secs: f64,
    /// Whether a drain is in progress (new submits refused).
    pub draining: bool,
    /// Shards restarted by the supervisor so far.
    pub shard_restarts: u64,
    /// Submit batches accepted.
    pub accepted: u64,
    /// Submit batches refused with `Busy`.
    pub busy: u64,
    /// Submits that failed after acceptance.
    pub errors: u64,
    /// Total packets executed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Verify-mode mismatches.
    pub mismatches: u64,
    /// Guarded-location overwrites across every shard (must be 0).
    pub lost_updates: u64,
    /// Batch activations across every shard.
    pub batches: u64,
    /// Simulator cycles across every shard.
    pub sim_cycles: u64,
    /// Sustained packets/sec since the server started.
    pub packets_per_sec: f64,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardSnapshot>,
}

/// Decode failures: the document did not parse, or a required field was
/// missing or mistyped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeStatsError(pub String);

impl std::fmt::Display for DecodeStatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad stats frame: {}", self.0)
    }
}

impl std::error::Error for DecodeStatsError {}

fn req_u64(doc: &Json, key: &str) -> Result<u64, DecodeStatsError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DecodeStatsError(format!("missing or non-integer field {key:?}")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, DecodeStatsError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| DecodeStatsError(format!("missing or non-numeric field {key:?}")))
}

impl StatsSnapshot {
    /// Decodes a stats JSON document.
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors and on missing/mistyped required
    /// fields. Unknown fields are ignored (new servers may add them).
    pub fn decode(doc: &str) -> Result<StatsSnapshot, DecodeStatsError> {
        let j = Json::parse(doc).map_err(|e| DecodeStatsError(e.to_string()))?;
        let backend = match j.get("backend").and_then(Json::as_str) {
            // An unknown backend name means a newer server; the typed
            // counters below still decode, so don't refuse the frame.
            Some(name) => name.parse::<BackendKind>().ok(),
            None => None,
        };
        let mut per_shard = Vec::new();
        if let Some(items) = j.get("per_shard").and_then(Json::as_arr) {
            for item in items {
                per_shard.push(ShardSnapshot {
                    shard: req_u64(item, "shard")?,
                    packets: req_u64(item, "packets")?,
                    forwarded: req_u64(item, "forwarded")?,
                    dropped: req_u64(item, "dropped")?,
                    mismatches: req_u64(item, "mismatches")?,
                    lost_updates: req_u64(item, "lost_updates")?,
                    batches: req_u64(item, "batches")?,
                    sim_cycles: req_u64(item, "sim_cycles")?,
                    queue_depth: req_u64(item, "queue_depth")?,
                    queue_depth_highwater: req_u64(item, "queue_depth_highwater")?,
                });
            }
        }
        Ok(StatsSnapshot {
            shards: req_u64(&j, "shards")?,
            backend,
            uptime_secs: req_f64(&j, "uptime_secs")?,
            draining: j
                .get("draining")
                .and_then(Json::as_bool)
                .ok_or_else(|| DecodeStatsError("missing field \"draining\"".into()))?,
            shard_restarts: req_u64(&j, "shard_restarts")?,
            accepted: req_u64(&j, "accepted")?,
            busy: req_u64(&j, "busy")?,
            errors: req_u64(&j, "errors")?,
            packets: req_u64(&j, "packets")?,
            forwarded: req_u64(&j, "forwarded")?,
            dropped: req_u64(&j, "dropped")?,
            mismatches: req_u64(&j, "mismatches")?,
            lost_updates: req_u64(&j, "lost_updates")?,
            batches: req_u64(&j, "batches")?,
            sim_cycles: req_u64(&j, "sim_cycles")?,
            packets_per_sec: req_f64(&j, "packets_per_sec")?,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardQueue;
    use crate::stats::{stats_json, ServerCounters};
    use crate::supervisor::PublicShard;
    use memsync_trace::MetricsRegistry;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    #[test]
    fn snapshot_decodes_a_real_stats_document() {
        let mk = |forwarded: u64, dropped: u64| {
            let mut r = MetricsRegistry::new();
            r.add("serve.packets", forwarded + dropped);
            r.add("serve.forwarded", forwarded);
            r.add("serve.dropped", dropped);
            r.add("serve.batches", 1);
            r.record("serve.batch_size", forwarded + dropped);
            r.record("serve.service_latency_us", 100);
            PublicShard {
                queue: Arc::new(ShardQueue::new(4)),
                stats: Arc::new(Mutex::new(r)),
                die: Arc::new(AtomicBool::new(false)),
                idle: Arc::new(AtomicBool::new(true)),
            }
        };
        let shards = vec![mk(10, 2), mk(5, 3)];
        let counters = ServerCounters::default();
        counters.accepted.store(2, Ordering::Relaxed);
        counters.busy.store(1, Ordering::Relaxed);
        let doc = stats_json(
            &shards,
            &counters,
            BackendKind::Fast,
            3,
            true,
            Instant::now(),
        );
        let snap = StatsSnapshot::decode(&doc).expect("decodes");
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.backend, Some(BackendKind::Fast));
        assert!(snap.draining);
        assert_eq!(snap.shard_restarts, 3);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.busy, 1);
        assert_eq!(snap.packets, 20);
        assert_eq!(snap.forwarded, 15);
        assert_eq!(snap.dropped, 5);
        assert_eq!(snap.lost_updates, 0);
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].forwarded, 10);
        assert_eq!(snap.per_shard[1].dropped, 3);
        assert!(snap.uptime_secs >= 0.0);
    }

    #[test]
    fn snapshot_rejects_malformed_and_incomplete_documents() {
        assert!(StatsSnapshot::decode("{not json").is_err());
        let e = StatsSnapshot::decode("{\"shards\": 2}").unwrap_err();
        assert!(e.to_string().contains("uptime_secs"), "{e}");
    }

    #[test]
    fn unknown_backend_names_do_not_refuse_the_frame() {
        // A newer server with a backend this client does not know about
        // still yields typed counters.
        let doc = stats_json(
            &[],
            &ServerCounters::default(),
            BackendKind::Sim,
            0,
            false,
            Instant::now(),
        )
        .replace("\"sim\"", "\"quantum\"");
        let snap = StatsSnapshot::decode(&doc).expect("decodes");
        assert_eq!(snap.backend, None);
    }
}
