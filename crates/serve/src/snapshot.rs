//! Typed decode of the stats frame.
//!
//! The server renders its merged stats as one JSON document
//! ([`crate::stats::stats_json`]); clients used to get that back as a raw
//! `String` and grep it. [`StatsSnapshot`] decodes the document into a
//! struct (via the dependency-free [`memsync_trace::Json`] parser) so
//! callers — `loadgen --verify`, the loopback tests, operators' tooling —
//! read `snapshot.lost_updates`, not string matches. The raw document
//! stays reachable through [`crate::Client::stats_raw`] for humans and
//! log pipelines.

use crate::backend::BackendKind;
use memsync_trace::Json;

/// Decoded per-shard counters from the `per_shard` array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u64,
    /// Packets this shard executed.
    pub packets: u64,
    /// Packets the oracle classified as forwarded.
    pub forwarded: u64,
    /// Packets dropped (TTL expiry or no route).
    pub dropped: u64,
    /// Verify-mode mismatches.
    pub mismatches: u64,
    /// Guarded-location overwrites observed by this shard's backend.
    pub lost_updates: u64,
    /// Batch activations.
    pub batches: u64,
    /// Simulator cycles consumed (0 under the fast backend).
    pub sim_cycles: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Highest queue depth ever observed at push time.
    pub queue_depth_highwater: u64,
    /// Packet total latched at this shard's most recent supervisor
    /// restart (0 while the original incarnation lives). Nonzero proves
    /// pre-restart traffic still counts in the totals above.
    pub restart_carryover: u64,
}

impl ShardSnapshot {
    /// Every key a per-shard stats object can carry, required first.
    /// `batch_size`, `service_latency_us`, and `stages` appear once the
    /// shard has traffic (respectively traced traffic). The completeness
    /// test in this module pins the document against this list.
    pub const DOCUMENT_FIELDS: &'static [&'static str] = &[
        "shard",
        "packets",
        "forwarded",
        "dropped",
        "mismatches",
        "lost_updates",
        "batches",
        "sim_cycles",
        "queue_depth_highwater",
        "queue_depth",
        "restart_carryover",
        "batch_size",
        "service_latency_us",
        "stages",
    ];
}

/// One traced stage's latency summary from the `stages` object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSummarySnapshot {
    /// Stage name (`decode_ns`, `queue_ns`, `coalesce_ns`, `execute_ns`,
    /// `egress_ns`, `write_ns`).
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Smallest observed value (nanoseconds).
    pub min: u64,
    /// Largest observed value (nanoseconds).
    pub max: u64,
    /// Mean (nanoseconds).
    pub mean: f64,
    /// Median, as a bucket upper bound clamped to the observed range.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// The `spans` section: request-tracing status and ring totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpansSnapshot {
    /// Whether request tracing is on.
    pub enabled: bool,
    /// Recent-ring sampling stride.
    pub sample_every: u64,
    /// Slow-span threshold in nanoseconds.
    pub slow_ns: u64,
    /// Spans finished so far, summed over shards.
    pub seen: u64,
    /// JSONL span lines exported so far.
    pub exported: u64,
}

/// The `fib.swap_latency_us` object: publish-to-barrier latency of
/// recent table swaps, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapLatencySnapshot {
    /// Swaps measured since the server started.
    pub count: u64,
    /// Median over the recent-swap ring.
    pub p50: u64,
    /// 99th percentile over the recent-swap ring.
    pub p99: u64,
    /// Maximum over the recent-swap ring.
    pub max: u64,
}

/// The `fib` section: the control plane's generation-swapped route
/// table. `generation`/`retired` together audit the RCU retirement
/// property — in steady state `retired == generation - 1`, proving no
/// shard still references a pre-swap table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibSnapshot {
    /// Current table generation (starts at 1).
    pub generation: u64,
    /// Routes in the current table.
    pub routes: u64,
    /// Table swaps published so far.
    pub swaps: u64,
    /// Highest generation every shard has provably moved past.
    pub retired: u64,
    /// Swap-latency percentiles; absent before the first swap.
    pub swap_latency_us: Option<SwapLatencySnapshot>,
}

/// The `frontend` section: connection-plane counters from whichever
/// frontend (`threads` or `reactor`) is serving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontendSnapshot {
    /// Frontend name (`threads` or `reactor`).
    pub kind: String,
    /// Connections currently open.
    pub conns_open: u64,
    /// Highest concurrently-open connection count ever observed.
    pub conns_peak: u64,
    /// Connections refused over the connection cap.
    pub conn_rejects: u64,
    /// Accept-loop pauses forced by fd or thread exhaustion.
    pub accept_pauses: u64,
    /// Times a frontend stopped reading a connection for backpressure.
    pub read_pauses: u64,
    /// Submits deferred on a full shard queue (reactor only).
    pub deferred_submits: u64,
    /// Deferred submits currently parked.
    pub deferred_now: u64,
    /// Largest per-connection egress queue ever observed, in bytes.
    pub egress_highwater_bytes: u64,
}

/// The merged stats frame, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Shard count.
    pub shards: u64,
    /// The forwarding backend serving this instance.
    pub backend: Option<BackendKind>,
    /// Server uptime in seconds.
    pub uptime_secs: f64,
    /// Whether a drain is in progress (new submits refused).
    pub draining: bool,
    /// Shards restarted by the supervisor so far.
    pub shard_restarts: u64,
    /// Submit batches accepted.
    pub accepted: u64,
    /// Submit batches refused with `Busy`.
    pub busy: u64,
    /// Submits that failed after acceptance.
    pub errors: u64,
    /// Total packets executed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Verify-mode mismatches.
    pub mismatches: u64,
    /// Guarded-location overwrites across every shard (must be 0).
    pub lost_updates: u64,
    /// Batch activations across every shard.
    pub batches: u64,
    /// Simulator cycles across every shard.
    pub sim_cycles: u64,
    /// Sustained packets/sec since the server started.
    pub packets_per_sec: f64,
    /// Summed per-shard restart carryover (see
    /// [`ShardSnapshot::restart_carryover`]).
    pub restart_carryover: u64,
    /// Traced stage latency summaries, in the document's pipeline order.
    /// Empty when tracing is off (the `stages` object is absent).
    pub stages: Vec<StageSummarySnapshot>,
    /// Request-tracing status (absent from documents rendered without a
    /// tracer — pre-tracing servers and bare test fixtures).
    pub spans: Option<SpansSnapshot>,
    /// Route-table control-plane section (absent from documents rendered
    /// by pre-control-plane servers and bare test fixtures).
    pub fib: Option<FibSnapshot>,
    /// Connection-plane counters (absent from documents rendered by
    /// pre-frontend servers and bare test fixtures).
    pub frontend: Option<FrontendSnapshot>,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardSnapshot>,
}

impl StatsSnapshot {
    /// Every key a top-level stats document can carry, required first.
    /// `batch_size` and `service_latency_us` appear once the server has
    /// traffic; `stages` once tracing recorded samples; `spans` whenever
    /// the document was rendered by a tracing-aware server. The
    /// completeness test in this module pins the document against this
    /// list.
    pub const DOCUMENT_FIELDS: &'static [&'static str] = &[
        "shards",
        "backend",
        "uptime_secs",
        "draining",
        "shard_restarts",
        "restart_carryover",
        "accepted",
        "busy",
        "errors",
        "packets",
        "forwarded",
        "dropped",
        "mismatches",
        "lost_updates",
        "batches",
        "sim_cycles",
        "packets_per_sec",
        "batch_size",
        "service_latency_us",
        "stages",
        "spans",
        "fib",
        "frontend",
        "per_shard",
    ];
}

/// Decode failures: the document did not parse, or a required field was
/// missing or mistyped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeStatsError(pub String);

impl std::fmt::Display for DecodeStatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad stats frame: {}", self.0)
    }
}

impl std::error::Error for DecodeStatsError {}

fn req_u64(doc: &Json, key: &str) -> Result<u64, DecodeStatsError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DecodeStatsError(format!("missing or non-integer field {key:?}")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, DecodeStatsError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| DecodeStatsError(format!("missing or non-numeric field {key:?}")))
}

impl StatsSnapshot {
    /// Decodes a stats JSON document.
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors and on missing/mistyped required
    /// fields. Unknown fields are ignored (new servers may add them).
    pub fn decode(doc: &str) -> Result<StatsSnapshot, DecodeStatsError> {
        let j = Json::parse(doc).map_err(|e| DecodeStatsError(e.to_string()))?;
        let backend = match j.get("backend").and_then(Json::as_str) {
            // An unknown backend name means a newer server; the typed
            // counters below still decode, so don't refuse the frame.
            Some(name) => name.parse::<BackendKind>().ok(),
            None => None,
        };
        let mut per_shard = Vec::new();
        if let Some(items) = j.get("per_shard").and_then(Json::as_arr) {
            for item in items {
                per_shard.push(ShardSnapshot {
                    shard: req_u64(item, "shard")?,
                    packets: req_u64(item, "packets")?,
                    forwarded: req_u64(item, "forwarded")?,
                    dropped: req_u64(item, "dropped")?,
                    mismatches: req_u64(item, "mismatches")?,
                    lost_updates: req_u64(item, "lost_updates")?,
                    batches: req_u64(item, "batches")?,
                    sim_cycles: req_u64(item, "sim_cycles")?,
                    queue_depth: req_u64(item, "queue_depth")?,
                    queue_depth_highwater: req_u64(item, "queue_depth_highwater")?,
                    restart_carryover: req_u64(item, "restart_carryover").unwrap_or(0),
                });
            }
        }
        let mut stages = Vec::new();
        if let Some(Json::Obj(fields)) = j.get("stages") {
            for (stage, v) in fields {
                stages.push(StageSummarySnapshot {
                    stage: stage.clone(),
                    count: req_u64(v, "count")?,
                    min: req_u64(v, "min")?,
                    max: req_u64(v, "max")?,
                    mean: req_f64(v, "mean")?,
                    p50: req_u64(v, "p50")?,
                    p90: req_u64(v, "p90")?,
                    p99: req_u64(v, "p99")?,
                });
            }
        }
        let spans = match j.get("spans") {
            Some(s) => Some(SpansSnapshot {
                enabled: s
                    .get("enabled")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| DecodeStatsError("missing field \"spans.enabled\"".into()))?,
                sample_every: req_u64(s, "sample_every")?,
                slow_ns: req_u64(s, "slow_ns")?,
                seen: req_u64(s, "seen")?,
                exported: req_u64(s, "exported")?,
            }),
            None => None,
        };
        let fib = match j.get("fib") {
            Some(f) => Some(FibSnapshot {
                generation: req_u64(f, "generation")?,
                routes: req_u64(f, "routes")?,
                swaps: req_u64(f, "swaps")?,
                retired: req_u64(f, "retired")?,
                swap_latency_us: match f.get("swap_latency_us") {
                    Some(l) => Some(SwapLatencySnapshot {
                        count: req_u64(l, "count")?,
                        p50: req_u64(l, "p50")?,
                        p99: req_u64(l, "p99")?,
                        max: req_u64(l, "max")?,
                    }),
                    None => None,
                },
            }),
            None => None,
        };
        let frontend = match j.get("frontend") {
            Some(f) => Some(FrontendSnapshot {
                kind: f
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| DecodeStatsError("missing field \"frontend.kind\"".into()))?
                    .to_string(),
                conns_open: req_u64(f, "conns_open")?,
                conns_peak: req_u64(f, "conns_peak")?,
                conn_rejects: req_u64(f, "conn_rejects")?,
                accept_pauses: req_u64(f, "accept_pauses")?,
                read_pauses: req_u64(f, "read_pauses")?,
                deferred_submits: req_u64(f, "deferred_submits")?,
                deferred_now: req_u64(f, "deferred_now")?,
                egress_highwater_bytes: req_u64(f, "egress_highwater_bytes")?,
            }),
            None => None,
        };
        Ok(StatsSnapshot {
            shards: req_u64(&j, "shards")?,
            backend,
            uptime_secs: req_f64(&j, "uptime_secs")?,
            draining: j
                .get("draining")
                .and_then(Json::as_bool)
                .ok_or_else(|| DecodeStatsError("missing field \"draining\"".into()))?,
            shard_restarts: req_u64(&j, "shard_restarts")?,
            accepted: req_u64(&j, "accepted")?,
            busy: req_u64(&j, "busy")?,
            errors: req_u64(&j, "errors")?,
            packets: req_u64(&j, "packets")?,
            forwarded: req_u64(&j, "forwarded")?,
            dropped: req_u64(&j, "dropped")?,
            mismatches: req_u64(&j, "mismatches")?,
            lost_updates: req_u64(&j, "lost_updates")?,
            batches: req_u64(&j, "batches")?,
            sim_cycles: req_u64(&j, "sim_cycles")?,
            packets_per_sec: req_f64(&j, "packets_per_sec")?,
            // Absent on documents from pre-tracing servers: default 0.
            restart_carryover: req_u64(&j, "restart_carryover").unwrap_or(0),
            stages,
            spans,
            fib,
            frontend,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardQueue;
    use crate::shard::ShardTables;
    use crate::stats::{stats_json, FrontendStats, ServerCounters, STAGE_METRICS};
    use crate::supervisor::PublicShard;
    use crate::tables::{ControlOp, EpochTables};
    use crate::tracing::{PendingSpan, ServeTracer, StageTimings, TracingConfig};
    use crate::FrontendKind;
    use memsync_netapp::fib::Route;
    use memsync_trace::MetricsRegistry;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    fn mk(forwarded: u64, dropped: u64, carryover: u64) -> PublicShard {
        let mut r = MetricsRegistry::new();
        r.add("serve.packets", forwarded + dropped);
        r.add("serve.forwarded", forwarded);
        r.add("serve.dropped", dropped);
        r.add("serve.batches", 1);
        r.record("serve.batch_size", forwarded + dropped);
        r.record("serve.service_latency_us", 100);
        PublicShard {
            queue: Arc::new(ShardQueue::new(4)),
            stats: Arc::new(Mutex::new(r)),
            die: Arc::new(AtomicBool::new(false)),
            idle: Arc::new(AtomicBool::new(true)),
            carryover: Arc::new(AtomicU64::new(carryover)),
            gen_seen: Arc::new(AtomicU64::new(1)),
        }
    }

    #[test]
    fn snapshot_decodes_a_real_stats_document() {
        let shards = vec![mk(10, 2, 7), mk(5, 3, 0)];
        let counters = ServerCounters::default();
        counters.accepted.store(2, Ordering::Relaxed);
        counters.busy.store(1, Ordering::Relaxed);
        let doc = stats_json(
            &shards,
            &counters,
            BackendKind::Fast,
            3,
            true,
            Instant::now(),
            None,
            None,
            None,
        );
        let snap = StatsSnapshot::decode(&doc).expect("decodes");
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.backend, Some(BackendKind::Fast));
        assert!(snap.draining);
        assert_eq!(snap.shard_restarts, 3);
        assert_eq!(snap.restart_carryover, 7);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.busy, 1);
        assert_eq!(snap.packets, 20);
        assert_eq!(snap.forwarded, 15);
        assert_eq!(snap.dropped, 5);
        assert_eq!(snap.lost_updates, 0);
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].forwarded, 10);
        assert_eq!(snap.per_shard[0].restart_carryover, 7);
        assert_eq!(snap.per_shard[1].dropped, 3);
        assert!(snap.uptime_secs >= 0.0);
        assert!(snap.stages.is_empty(), "no tracer, no stages");
        assert_eq!(snap.spans, None, "no tracer, no spans section");
        assert_eq!(snap.fib, None, "no tables, no fib section");
        assert_eq!(snap.frontend, None, "no frontend, no frontend section");
    }

    #[test]
    fn snapshot_rejects_malformed_and_incomplete_documents() {
        assert!(StatsSnapshot::decode("{not json").is_err());
        let e = StatsSnapshot::decode("{\"shards\": 2}").unwrap_err();
        assert!(e.to_string().contains("uptime_secs"), "{e}");
    }

    #[test]
    fn decode_skips_unknown_stats_sections_from_newer_servers() {
        // Forward compat: a newer server may add whole sections (scalar,
        // object, or array shaped) this decoder has never heard of; they
        // must be skipped, not refused, and the known fields still land.
        let doc = full_document();
        let patched = doc.replacen(
            "\"shards\":",
            "\"xyzzy_section\":{\"a\":1,\"b\":[2,{\"c\":3}]},\
             \"xyzzy_count\":9,\"xyzzy_list\":[1,2,3],\"shards\":",
            1,
        );
        assert_ne!(doc, patched, "patch applied");
        let snap = StatsSnapshot::decode(&patched).expect("unknown sections skipped");
        assert_eq!(snap, StatsSnapshot::decode(&doc).unwrap());
        // Unknown keys inside a known section are skipped too.
        let nested = doc.replacen("\"generation\":", "\"epoch_era\":4,\"generation\":", 1);
        let snap = StatsSnapshot::decode(&nested).expect("unknown nested field skipped");
        assert_eq!(snap.fib.unwrap().generation, 2);
    }

    #[test]
    fn decode_tolerates_documents_from_older_servers_missing_new_sections() {
        // Backward compat: a pre-control-plane server renders no fib
        // section (and a pre-tracing one no spans/frontend); the decode
        // must yield None, not an error.
        let doc = stats_json(
            &[mk(4, 1, 0)],
            &ServerCounters::default(),
            BackendKind::Sim,
            0,
            false,
            Instant::now(),
            None,
            None,
            None,
        );
        assert!(!doc.contains("\"fib\""), "fixture really lacks fib: {doc}");
        let snap = StatsSnapshot::decode(&doc).expect("old-server document decodes");
        assert_eq!(snap.fib, None);
        assert_eq!(snap.spans, None);
        assert_eq!(snap.frontend, None);
        assert_eq!(snap.forwarded, 4);
    }

    #[test]
    fn unknown_backend_names_do_not_refuse_the_frame() {
        // A newer server with a backend this client does not know about
        // still yields typed counters.
        let doc = stats_json(
            &[],
            &ServerCounters::default(),
            BackendKind::Sim,
            0,
            false,
            Instant::now(),
            None,
            None,
            None,
        )
        .replace("\"sim\"", "\"quantum\"");
        let snap = StatsSnapshot::decode(&doc).expect("decodes");
        assert_eq!(snap.backend, None);
    }

    /// Renders a fully-populated stats document: traffic on one shard,
    /// every stage histogram recorded, a live tracer with one finished
    /// span.
    fn full_document() -> String {
        let shards = vec![mk(10, 2, 3)];
        {
            let mut reg = shards[0].stats.lock().unwrap();
            for (_, metric) in STAGE_METRICS.iter().skip(1).take(4) {
                reg.record_bucket(metric, 900);
            }
        }
        let tracer = ServeTracer::new(
            TracingConfig {
                enabled: true,
                ..TracingConfig::default()
            },
            1,
        )
        .unwrap();
        tracer.finish(
            &PendingSpan {
                span_id: 1,
                client_assigned: false,
                decode_ns: 100,
                timings: vec![StageTimings {
                    shard: 0,
                    packets: 12,
                    queue_ns: 900,
                    coalesce_ns: 900,
                    execute_ns: 900,
                    egress_ns: 900,
                    sim_cycles: 0,
                    frames: 24,
                }],
            },
            200,
        );
        let frontend = FrontendStats::default();
        frontend.conn_opened();
        // A control plane with one completed swap, so the fib section
        // carries the swap_latency_us object too.
        let tables = EpochTables::new(ShardTables::from_routes(&[Route {
            prefix: 0,
            len: 0,
            next_hop: 7,
        }]));
        tables.mutate(&[ControlOp::Add(vec![Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 42,
        }])]);
        tables.retire_up_to(1);
        tables.record_swap_latency(350);
        stats_json(
            &shards,
            &ServerCounters::default(),
            BackendKind::Fast,
            1,
            false,
            Instant::now(),
            Some(&tracer),
            Some((FrontendKind::Reactor, &frontend)),
            Some(&tables),
        )
    }

    fn object_keys(j: &Json) -> Vec<String> {
        match j {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    #[test]
    fn document_fields_cover_the_rendered_stats_document_exactly() {
        // Satellite completeness pin: a field added to the document but
        // not to DOCUMENT_FIELDS (or vice versa) fails here; a field
        // added to DOCUMENT_FIELDS but not the typed snapshot fails the
        // exhaustive destructure below.
        let doc = full_document();
        let j = Json::parse(&doc).unwrap();
        let keys = object_keys(&j);
        assert_eq!(
            keys,
            StatsSnapshot::DOCUMENT_FIELDS,
            "top-level stats document keys drifted from \
             StatsSnapshot::DOCUMENT_FIELDS"
        );
        let per_shard = j.get("per_shard").and_then(Json::as_arr).unwrap();
        assert_eq!(
            object_keys(&per_shard[0]),
            ShardSnapshot::DOCUMENT_FIELDS,
            "per-shard object keys drifted from ShardSnapshot::DOCUMENT_FIELDS"
        );

        // Exhaustive destructures: adding a struct field without updating
        // this test (and the decode) is a compile error here; adding a
        // document field without a typed counterpart trips the key
        // assertions above first.
        let snap = StatsSnapshot::decode(&doc).expect("full document decodes");
        let StatsSnapshot {
            shards: _,
            backend,
            uptime_secs: _,
            draining: _,
            shard_restarts,
            accepted: _,
            busy: _,
            errors: _,
            packets,
            forwarded: _,
            dropped: _,
            mismatches: _,
            lost_updates: _,
            batches: _,
            sim_cycles: _,
            packets_per_sec: _,
            restart_carryover,
            stages,
            spans,
            fib,
            frontend,
            per_shard,
        } = snap;
        assert_eq!(backend, Some(BackendKind::Fast));
        assert_eq!((packets, shard_restarts, restart_carryover), (12, 1, 3));
        // All six stages present: four shard-side plus decode/write.
        assert_eq!(stages.len(), STAGE_METRICS.len(), "{stages:?}");
        let spans = spans.expect("spans section present with a tracer");
        assert!(spans.enabled);
        assert_eq!(spans.seen, 1);
        let fib = fib.expect("fib section present with tables");
        let FibSnapshot {
            generation,
            routes,
            swaps,
            retired,
            swap_latency_us,
        } = fib;
        assert_eq!((generation, routes, swaps, retired), (2, 2, 1, 1));
        let lat = swap_latency_us.expect("one swap measured");
        assert_eq!((lat.count, lat.max), (1, 350));
        assert!(lat.p50 <= lat.p99 && lat.p99 <= lat.max);
        let frontend = frontend.expect("frontend section present");
        assert_eq!(frontend.kind, "reactor");
        assert_eq!((frontend.conns_open, frontend.conns_peak), (1, 1));
        let ShardSnapshot {
            shard: _,
            packets: _,
            forwarded: _,
            dropped: _,
            mismatches: _,
            lost_updates: _,
            batches: _,
            sim_cycles: _,
            queue_depth: _,
            queue_depth_highwater: _,
            restart_carryover: shard_carry,
        } = per_shard[0];
        assert_eq!(shard_carry, 3);
    }
}
