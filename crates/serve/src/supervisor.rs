//! Shard supervision: spawn, monitor, restart.
//!
//! Shard threads can die — deliberately through the kill fault-injection
//! frame, or through a real bug (e.g. a stalled simulator trips the
//! cycle-budget assertion). The supervisor polls the join handles; when a
//! shard exits while the service is still running it increments
//! `shard_restarts` and respawns the shard **on the same queue**, so jobs
//! that were queued behind the crash survive and only the batch that was
//! mid-flight is reported as failed (its reply channel drops).
//!
//! The replacement also runs on the same stats registry — a restart never
//! zeroes a shard's contribution to the merged stats frame. The packet
//! total at the moment of the most recent restart is latched per shard as
//! `restart_carryover`, so stats consumers can both verify pre-restart
//! traffic survived and attribute how much of a shard's total predates
//! its newest incarnation.

use crate::queue::ShardQueue;
use crate::shard::{self, ShardCtx};
use crate::tables::EpochTables;
use crate::ServeConfig;
use memsync_trace::MetricsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handles for one supervised shard.
#[derive(Debug)]
pub struct ShardHandle {
    /// The shard's job queue (outlives any one thread incarnation).
    pub queue: Arc<ShardQueue>,
    /// The shard's serve-level metrics (shared across incarnations).
    pub stats: Arc<Mutex<MetricsRegistry>>,
    /// Fault-injection flag (the kill frame sets it).
    pub die: Arc<AtomicBool>,
    /// Idle flag (drain waits for it).
    pub idle: Arc<AtomicBool>,
    /// `serve.packets` total latched at the shard's most recent restart
    /// (0 while the original incarnation lives). Because the registry is
    /// shared across incarnations, a nonzero value proves pre-restart
    /// traffic still counts in the merged stats frame.
    pub carryover: Arc<AtomicU64>,
    /// Highest table generation this shard (any incarnation) has synced
    /// to — the control plane's drain-barrier acknowledgement. Shared
    /// across restarts so a replacement re-acknowledges on spawn.
    pub gen_seen: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

/// Spawns and supervises the shard fleet.
#[derive(Debug)]
pub struct Supervisor {
    shards: Vec<ShardHandle>,
    stop: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
    /// The generation-swapped route tables shared by every shard and
    /// every restart incarnation — the ~32 MiB flat classifier is built
    /// once per generation, never per shard.
    tables: Arc<EpochTables>,
    config: ServeConfig,
}

#[allow(clippy::too_many_arguments)]
fn spawn_shard(
    id: usize,
    queue: Arc<ShardQueue>,
    stats: Arc<Mutex<MetricsRegistry>>,
    stop: Arc<AtomicBool>,
    die: Arc<AtomicBool>,
    idle: Arc<AtomicBool>,
    tables: Arc<EpochTables>,
    gen_seen: Arc<AtomicU64>,
    config: ServeConfig,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("memsync-shard-{id}"))
        .spawn(move || {
            let ctx = ShardCtx {
                id,
                queue,
                stats,
                stop,
                die,
                idle,
                tables,
                gen_seen,
                config,
            };
            shard::run(&ctx);
        })
        .expect("shard thread spawns")
}

impl Supervisor {
    /// Spawns `config.shards` shard threads plus the monitor thread.
    /// `tables` is the server's generation-swapped table structure (the
    /// control worker is its writer; every shard reads through it).
    pub fn start(
        config: &ServeConfig,
        stop: Arc<AtomicBool>,
        tables: Arc<EpochTables>,
    ) -> Supervisor {
        let shards: Vec<ShardHandle> = (0..config.shards)
            .map(|id| {
                let queue = Arc::new(ShardQueue::new(config.queue_cap));
                let stats = Arc::new(Mutex::new(MetricsRegistry::new()));
                let die = Arc::new(AtomicBool::new(false));
                let idle = Arc::new(AtomicBool::new(true));
                let gen_seen = Arc::new(AtomicU64::new(0));
                let thread = spawn_shard(
                    id,
                    Arc::clone(&queue),
                    Arc::clone(&stats),
                    Arc::clone(&stop),
                    Arc::clone(&die),
                    Arc::clone(&idle),
                    Arc::clone(&tables),
                    Arc::clone(&gen_seen),
                    config.clone(),
                );
                ShardHandle {
                    queue,
                    stats,
                    die,
                    idle,
                    carryover: Arc::new(AtomicU64::new(0)),
                    gen_seen,
                    thread: Some(thread),
                }
            })
            .collect();
        Supervisor {
            shards,
            stop,
            restarts: Arc::new(AtomicU64::new(0)),
            tables,
            config: config.clone(),
        }
    }

    /// Shard handles (queues, stats, flags).
    pub fn shards(&self) -> &[ShardHandle] {
        &self.shards
    }

    /// Total shard restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// The restart counter handle (stats frames read it).
    pub fn restarts_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.restarts)
    }

    /// Whether every queue is empty and every shard idle — the drain
    /// completion condition.
    pub fn quiescent(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.queue.is_empty() && s.idle.load(Ordering::Acquire))
    }

    /// One monitor pass: respawn any shard whose thread exited while the
    /// service is running. Returns how many shards were restarted.
    pub fn check_and_restart(&mut self) -> usize {
        if self.stop.load(Ordering::Acquire) {
            return 0;
        }
        let mut restarted = 0;
        for (id, shard) in self.shards.iter_mut().enumerate() {
            let dead = shard
                .thread
                .as_ref()
                .map(JoinHandle::is_finished)
                .unwrap_or(true);
            if !dead {
                continue;
            }
            // Re-check stop per shard: if it rose after this pass began,
            // a shard that exited *because of* stop must not be counted
            // as a crash and respawned (the respawn would just exit, but
            // shard_restarts would lie).
            if self.stop.load(Ordering::Acquire) {
                return restarted;
            }
            if let Some(t) = shard.thread.take() {
                // The panic payload already unwound; surface it in logs.
                if let Err(e) = t.join() {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("unknown panic");
                    eprintln!("[supervisor] shard {id} died: {msg}; restarting");
                }
            }
            // Latch the packet total the dead incarnation left behind.
            // The registry itself is *not* reset — the replacement keeps
            // accumulating on it — so the merged stats frame never loses
            // pre-restart traffic; the latch makes that auditable.
            {
                let total = shard
                    .stats
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .counter("serve.packets");
                shard.carryover.store(total, Ordering::Relaxed);
            }
            shard.die.store(false, Ordering::Release);
            shard.idle.store(true, Ordering::Release);
            shard.thread = Some(spawn_shard(
                id,
                Arc::clone(&shard.queue),
                Arc::clone(&shard.stats),
                Arc::clone(&self.stop),
                Arc::clone(&shard.die),
                Arc::clone(&shard.idle),
                Arc::clone(&self.tables),
                Arc::clone(&shard.gen_seen),
                self.config.clone(),
            ));
            self.restarts.fetch_add(1, Ordering::Relaxed);
            restarted += 1;
        }
        restarted
    }

    /// Moves monitoring onto a background thread polling every few
    /// milliseconds until the stop flag rises.
    pub fn monitor_in_background(mut self) -> SupervisorHandle {
        let stop = Arc::clone(&self.stop);
        let restarts = Arc::clone(&self.restarts);
        let shards_public: Vec<PublicShard> = self
            .shards
            .iter()
            .map(|s| PublicShard {
                queue: Arc::clone(&s.queue),
                stats: Arc::clone(&s.stats),
                die: Arc::clone(&s.die),
                idle: Arc::clone(&s.idle),
                carryover: Arc::clone(&s.carryover),
                gen_seen: Arc::clone(&s.gen_seen),
            })
            .collect();
        let monitor = std::thread::Builder::new()
            .name("memsync-supervisor".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    self.check_and_restart();
                    std::thread::sleep(Duration::from_millis(5));
                }
                // Final join of every shard on the way out.
                for shard in self.shards.iter_mut() {
                    if let Some(t) = shard.thread.take() {
                        let _ = t.join();
                    }
                }
            })
            .expect("supervisor thread spawns");
        SupervisorHandle {
            shards: shards_public,
            restarts,
            monitor: Some(monitor),
        }
    }
}

/// The shard surfaces the server needs after supervision moves to the
/// background: queue, stats, and flags — everything but the join handle.
#[derive(Debug, Clone)]
pub struct PublicShard {
    /// The shard's job queue.
    pub queue: Arc<ShardQueue>,
    /// The shard's serve-level metrics.
    pub stats: Arc<Mutex<MetricsRegistry>>,
    /// Fault-injection flag.
    pub die: Arc<AtomicBool>,
    /// Idle flag.
    pub idle: Arc<AtomicBool>,
    /// Packet total latched at the most recent restart (see
    /// [`ShardHandle::carryover`]).
    pub carryover: Arc<AtomicU64>,
    /// Highest table generation the shard has synced to (see
    /// [`ShardHandle::gen_seen`]).
    pub gen_seen: Arc<AtomicU64>,
}

/// A running background supervisor.
#[derive(Debug)]
pub struct SupervisorHandle {
    shards: Vec<PublicShard>,
    restarts: Arc<AtomicU64>,
    monitor: Option<JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Shard surfaces.
    pub fn shards(&self) -> &[PublicShard] {
        &self.shards
    }

    /// Total restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Drain completion condition: all queues empty, all shards idle.
    pub fn quiescent(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.queue.is_empty() && s.idle.load(Ordering::Acquire))
    }

    /// Joins the monitor (which joins the shards). Call after raising the
    /// stop flag.
    pub fn join(mut self) {
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}
