//! The `memsync-top` bin: live per-shard telemetry, plus offline span
//! waterfalls.
//!
//! ```text
//! memsync-top [--addr 127.0.0.1:7171] [--interval-ms 1000] [--frames N]
//!             [--raw]
//! memsync-top --replay SPANS.jsonl [--slowest N]
//! ```
//!
//! Live mode subscribes to the server's stats stream (one push per
//! `--interval-ms`) and renders per-shard throughput, queue depth, stage
//! p50–p99, lost-update and restart counters. On a terminal each frame
//! redraws in place; piped output prints one block per push. `--frames N`
//! stops after N pushes (0 = run until the stream ends); `--raw` prints
//! the raw JSON stats documents instead of rendering.
//!
//! Replay mode reads a `serve --trace-spans` JSONL file and reconstructs
//! the run offline: per-stage percentiles over every span plus a
//! waterfall of the `--slowest N` (default 5) spans. Exits non-zero when
//! the file is unreadable or contains no spans.

use memsync_serve::snapshot::{StageSummarySnapshot, StatsSnapshot};
use memsync_serve::Client;
use memsync_trace::SpanRecord;
use std::io::IsTerminal;
use std::time::{Duration, Instant};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num_arg(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

/// Nanoseconds, human-scaled.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Percentile over a sorted slice (nearest-rank on the closed interval).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------- replay

/// Offline waterfall from a `--trace-spans` JSONL file.
fn replay(path: &str, slowest: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spans = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match SpanRecord::parse(line) {
            Some(s) => spans.push(s),
            None => skipped += 1,
        }
    }
    if spans.is_empty() {
        return Err(format!(
            "{path}: no span records ({skipped} non-span lines)"
        ));
    }
    let shard_count = spans.iter().map(|s| s.shard).max().unwrap_or(0) as usize + 1;
    let packets: u64 = spans.iter().map(|s| s.packets).sum();
    println!(
        "{path}: {} spans over {shard_count} shards, {packets} packets \
         ({skipped} non-span lines skipped)",
        spans.len()
    );

    // Per-stage percentiles over every span — the same numbers the live
    // stats stream reports as bucketized summaries.
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99", "max"
    );
    for stage_idx in 0..6 {
        let name = spans[0].stages()[stage_idx].0;
        let mut vals: Vec<u64> = spans.iter().map(|s| s.stages()[stage_idx].1).collect();
        vals.sort_unstable();
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            vals.len(),
            fmt_ns(percentile(&vals, 0.50)),
            fmt_ns(percentile(&vals, 0.90)),
            fmt_ns(percentile(&vals, 0.99)),
            fmt_ns(*vals.last().unwrap()),
        );
    }

    // Waterfall of the slowest spans: one proportional bar per span,
    // stages marked by their initial (d/q/c/x/e/w).
    let mut by_total = spans.clone();
    by_total.sort_unstable_by_key(|s| std::cmp::Reverse(s.total_ns()));
    by_total.truncate(slowest);
    println!();
    println!(
        "slowest {} spans (d=decode q=queue c=coalesce x=execute e=egress w=write):",
        by_total.len()
    );
    const BAR: usize = 48;
    for s in &by_total {
        let total = s.total_ns().max(1);
        let mut bar = String::new();
        for (i, (_, ns)) in s.stages().iter().enumerate() {
            let cells = (*ns as f64 / total as f64 * BAR as f64).round() as usize;
            let mark = ['d', 'q', 'c', 'x', 'e', 'w'][i];
            bar.extend(std::iter::repeat_n(mark, cells));
        }
        println!(
            "  span {:>18} shard {:>2} {:>5} pkts {:>9} |{bar:<BAR$}|",
            format_span_id(s),
            s.shard,
            s.packets,
            fmt_ns(s.total_ns()),
        );
    }
    Ok(())
}

/// Span id for display: client ids verbatim, server ids with an `s` tag.
fn format_span_id(s: &SpanRecord) -> String {
    if s.client_assigned {
        format!("{:#x}", s.span)
    } else {
        format!("s{:#x}", s.span & !(1 << 63))
    }
}

// ------------------------------------------------------------------ live

/// One rendered frame of the live dashboard.
fn render(snap: &StatsSnapshot, prev: Option<&(StatsSnapshot, Instant)>, clear: bool) {
    if clear {
        // Redraw in place on a terminal.
        print!("\x1b[2J\x1b[H");
    }
    let inst_pps = prev.map(|(p, at)| {
        let dt = at.elapsed().as_secs_f64().max(1e-9);
        (snap.packets.saturating_sub(p.packets)) as f64 / dt
    });
    let backend = snap.backend.map_or_else(|| "?".into(), |b| b.to_string());
    println!(
        "memsync-top — {backend} backend, {} shards, up {:.0}s{}",
        snap.shards,
        snap.uptime_secs,
        if snap.draining { ", DRAINING" } else { "" }
    );
    println!(
        "packets {} (avg {:.0} pkts/s{}) busy {} errors {} lost_updates {} \
         restarts {} carryover {}",
        snap.packets,
        snap.packets_per_sec,
        inst_pps.map_or_else(String::new, |p| format!(", now {p:.0}")),
        snap.busy,
        snap.errors,
        snap.lost_updates,
        snap.shard_restarts,
        snap.restart_carryover,
    );
    if let Some(spans) = &snap.spans {
        println!(
            "tracing {} — {} spans seen, {} exported, sample 1/{}, slow ≥ {}",
            if spans.enabled { "on" } else { "off" },
            spans.seen,
            spans.exported,
            spans.sample_every,
            fmt_ns(spans.slow_ns),
        );
    }
    if !snap.stages.is_empty() {
        println!();
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "p50", "p90", "p99"
        );
        for StageSummarySnapshot {
            stage,
            count,
            p50,
            p90,
            p99,
            ..
        } in &snap.stages
        {
            let name = stage.trim_end_matches("_ns");
            println!(
                "{name:<12} {count:>10} {:>10} {:>10} {:>10}",
                fmt_ns(*p50),
                fmt_ns(*p90),
                fmt_ns(*p99)
            );
        }
    }
    println!();
    println!(
        "{:<6} {:>10} {:>9} {:>7} {:>9} {:>6} {:>6} {:>10}",
        "shard", "packets", "pkts/s", "queue", "highwater", "lost", "drops", "carryover"
    );
    for s in &snap.per_shard {
        let shard_pps = prev
            .and_then(|(p, at)| {
                p.per_shard
                    .iter()
                    .find(|q| q.shard == s.shard)
                    .map(|q| (s.packets.saturating_sub(q.packets), at))
            })
            .map(|(d, at)| d as f64 / at.elapsed().as_secs_f64().max(1e-9));
        println!(
            "{:<6} {:>10} {:>9} {:>7} {:>9} {:>6} {:>6} {:>10}",
            s.shard,
            s.packets,
            shard_pps.map_or_else(|| "-".into(), |p| format!("{p:.0}")),
            s.queue_depth,
            s.queue_depth_highwater,
            s.lost_updates,
            s.dropped,
            s.restart_carryover,
        );
    }
}

/// Live dashboard over the stats stream. Returns once `frames` pushes
/// rendered (or the stream ends).
fn live(addr: &str, interval: Duration, frames: u64, raw: bool) {
    let mut client = Client::connect(addr).expect("connect to serve");
    if raw {
        // Raw mode polls the plain stats frame: one JSON document per
        // interval, no rendering — good for log pipelines. A closed pipe
        // (e.g. `| head`) ends the loop instead of panicking.
        use std::io::Write;
        let mut n = 0u64;
        let stdout = std::io::stdout();
        loop {
            let doc = client.stats_raw().expect("stats frame");
            if writeln!(stdout.lock(), "{doc}").is_err() {
                return;
            }
            n += 1;
            if frames > 0 && n >= frames {
                return;
            }
            std::thread::sleep(interval);
        }
    }
    if !client.supports_tracing() {
        eprintln!("server does not advertise the tracing capability; no stats stream");
        std::process::exit(1);
    }
    let clear = std::io::stdout().is_terminal();
    let mut prev: Option<(StatsSnapshot, Instant)> = None;
    let mut n = 0u64;
    client
        .stats_stream(interval, |snap| {
            render(&snap, prev.as_ref(), clear);
            prev = Some((snap, Instant::now()));
            n += 1;
            frames == 0 || n < frames
        })
        .expect("stats stream");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = arg_value(&args, "--replay") {
        let slowest = num_arg(&args, "--slowest", 5) as usize;
        if let Err(e) = replay(&path, slowest) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let interval = Duration::from_millis(num_arg(&args, "--interval-ms", 1000).max(1));
    let frames = num_arg(&args, "--frames", 0);
    let raw = args.iter().any(|a| a == "--raw");
    live(&addr, interval, frames, raw);
}
