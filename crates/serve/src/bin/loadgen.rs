//! The `loadgen` bin: seeded traffic against a memsync-serve instance.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--conns 8] [--jobs 100] [--batch 32]
//!         [--seed 42] [--routes 64] [--verify] [--open-loop]
//!         [--backend sim|fast|differential] [--drain] [--shutdown]
//!         [--spans] [--stats-interval MS]
//! ```
//!
//! `--conns` connections each submit `--jobs` batches of `--batch`
//! seeded [`Workload`](memsync_netapp::Workload) packets. Closed-loop
//! (default) retries `Busy` with backoff, so every generated packet is
//! eventually served; `--open-loop` submits once and counts refused
//! batches instead. `--routes` must match the server's FIB (checked
//! against the negotiated [`ServerHello`](memsync_serve::ServerHello));
//! `--backend` asserts which engine the server is running.
//!
//! `--spans` tags every submit with a client-assigned span id
//! (`conn << 32 | batch_index`), so a `--trace-spans` server exports
//! spans the offline waterfall can correlate back to this run. It
//! requires the server to advertise the tracing capability.
//! `--stats-interval MS` subscribes a side connection to the server's
//! stats stream and prints one machine-readable `STATS` line per push.
//!
//! Every run ends with one `SUMMARY key=value ...` line for scripts.
//! Exits non-zero on any verify mismatch, on a forwarded+dropped total
//! that does not account for every accepted packet, or (via the typed
//! stats snapshot) on any server-side lost update. With `--drain` the
//! run finishes with a drain frame (and checks it succeeds); `--shutdown`
//! additionally stops the server.

use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::{BackendKind, Client, Response, SubmitOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num_arg(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn connect(addr: &str) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect to serve")
}

/// One connection's closed- or open-loop run. With `spans`, each submit
/// carries the client-assigned span id `conn << 32 | batch_index`.
#[allow(clippy::too_many_arguments)]
fn run_conn(
    addr: &str,
    conn: u64,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    base_options: SubmitOptions,
    open_loop: bool,
    spans: bool,
) -> (BatchResult, u64, u64) {
    let mut client = connect(addr);
    assert_eq!(
        client.server().routes as usize,
        routes,
        "--routes disagrees with the server's FIB"
    );
    let w = Workload::generate(seed, jobs * batch, routes);
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    for (i, chunk) in w.packets.chunks(batch).enumerate() {
        let options = if spans {
            base_options.span(conn << 32 | i as u64)
        } else {
            base_options
        };
        if open_loop {
            match client.submit_once(chunk, options).expect("submit") {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    totals.forwarded += forwarded;
                    totals.dropped += dropped;
                    totals.mismatches += mismatches;
                    submitted += chunk.len() as u64;
                }
                Response::Busy(_) => refused += 1,
                other => panic!("unexpected submit response: {other:?}"),
            }
        } else {
            let r = client.submit(chunk, options).expect("closed-loop submit");
            totals.forwarded += r.forwarded;
            totals.dropped += r.dropped;
            totals.mismatches += r.mismatches;
            totals.busy_retries += r.busy_retries;
            submitted += chunk.len() as u64;
        }
    }
    (totals, submitted, refused)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let conns = num_arg(&args, "--conns", 8) as usize;
    let jobs = num_arg(&args, "--jobs", 100) as usize;
    let batch = num_arg(&args, "--batch", 32) as usize;
    let max_batch = memsync_serve::frame::MAX_SUBMIT_PACKETS;
    assert!(
        batch >= 1 && batch <= max_batch,
        "--batch must be 1..={max_batch} (one submit frame), got {batch}"
    );
    let seed = num_arg(&args, "--seed", 42);
    let routes = num_arg(&args, "--routes", 64) as usize;
    let options = SubmitOptions::new().verify(args.iter().any(|a| a == "--verify"));
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let spans = args.iter().any(|a| a == "--spans");
    let stats_interval = arg_value(&args, "--stats-interval").map(|v| {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--stats-interval wants milliseconds, got {v}"));
        assert!(ms > 0, "--stats-interval must be nonzero");
        Duration::from_millis(ms)
    });
    let expect_backend = arg_value(&args, "--backend").map(|v| {
        v.parse::<BackendKind>()
            .unwrap_or_else(|e| panic!("--backend: {e}"))
    });

    // One connection up front to report (and check) what we negotiated.
    {
        let probe = connect(addr.as_str());
        let hello = *probe.server();
        println!(
            "negotiated protocol v{} with {} backend ({} shards, {} egress, {} routes)",
            hello.version, hello.backend, hello.shards, hello.egress, hello.routes
        );
        if let Some(expected) = expect_backend {
            assert_eq!(
                hello.backend, expected,
                "server runs the {} backend, --backend asked for {expected}",
                hello.backend
            );
        }
        if (spans || stats_interval.is_some()) && !probe.supports_tracing() {
            panic!("--spans/--stats-interval need a server that advertises the tracing capability");
        }
        drop(probe);
    }

    // The stats-stream monitor rides a dedicated connection so its pushes
    // never interleave with submit traffic. It stops at the first push
    // after the load threads finish.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = stats_interval.map(|every| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let run_start = Instant::now();
        std::thread::spawn(move || {
            let mut client = connect(addr.as_str());
            client
                .stats_stream(every, |snap| {
                    println!(
                        "STATS t={:.2} packets={} pps={:.0} queue_restarts={} lost_updates={}",
                        run_start.elapsed().as_secs_f64(),
                        snap.packets,
                        snap.packets_per_sec,
                        snap.shard_restarts,
                        snap.lost_updates
                    );
                    !stop.load(Ordering::Relaxed)
                })
                .expect("stats stream");
        })
    });

    let t0 = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_conn(
                    &addr,
                    c as u64,
                    seed.wrapping_add(c as u64),
                    jobs,
                    batch,
                    routes,
                    options,
                    open_loop,
                    spans,
                )
            })
        })
        .collect();
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    for h in handles {
        let (t, s, r) = h.join().expect("loadgen connection thread");
        totals.forwarded += t.forwarded;
        totals.dropped += t.dropped;
        totals.mismatches += t.mismatches;
        totals.busy_retries += t.busy_retries;
        submitted += s;
        refused += r;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(m) = monitor {
        m.join().expect("stats monitor thread");
    }
    let served = u64::from(totals.forwarded) + u64::from(totals.dropped);
    println!(
        "submitted {submitted} packets over {conns} conns in {elapsed:.2}s \
         ({:.0} pkts/sec)",
        submitted as f64 / elapsed
    );
    println!(
        "forwarded {} dropped {} mismatches {} busy_retries {} refused_batches {refused}",
        totals.forwarded, totals.dropped, totals.mismatches, totals.busy_retries
    );

    let mut failed = false;
    if totals.mismatches > 0 {
        eprintln!("FAIL: {} verify mismatches", totals.mismatches);
        failed = true;
    }
    if served != submitted {
        eprintln!("FAIL: served {served} != submitted {submitted} (silent loss)");
        failed = true;
    }

    // The server-side lost-update detector must stay at zero: paced
    // injection never overwrites an unconsumed guarded value, so any
    // count here is a pacing regression (see `memsync_hic::hazards`).
    // The typed snapshot also exposes supervisor restarts — a shard that
    // crashed under plain traffic is a failure even if totals added up.
    let (lost_updates, shard_restarts) = {
        let mut client = connect(addr.as_str());
        let snap = client.stats().expect("stats frame");
        if snap.lost_updates > 0 {
            eprintln!(
                "FAIL: server reports {} lost updates (unpaced overwrite)",
                snap.lost_updates
            );
            failed = true;
        }
        if snap.shard_restarts > 0 {
            eprintln!(
                "FAIL: {} shard restarts during an uninjected run",
                snap.shard_restarts
            );
            failed = true;
        }
        (snap.lost_updates, snap.shard_restarts)
    };

    // One machine-readable line for scripts (CI greps this).
    println!(
        "SUMMARY submitted={submitted} forwarded={} dropped={} mismatches={} \
         busy_retries={} refused={refused} elapsed_s={elapsed:.3} pps={:.0} \
         lost_updates={lost_updates} shard_restarts={shard_restarts}",
        totals.forwarded,
        totals.dropped,
        totals.mismatches,
        totals.busy_retries,
        submitted as f64 / elapsed
    );

    if args.iter().any(|a| a == "--drain" || a == "--shutdown") {
        let mut client = connect(addr.as_str());
        match client.drain() {
            Ok(()) => println!("drain complete"),
            Err(e) => {
                eprintln!("FAIL: drain failed: {e}");
                failed = true;
            }
        }
        if args.iter().any(|a| a == "--shutdown") {
            client.shutdown().expect("shutdown frame");
            println!("shutdown sent");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
