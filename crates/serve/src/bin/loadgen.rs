//! The `loadgen` bin: seeded traffic against a memsync-serve instance.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--conns 8] [--jobs 100] [--batch 32]
//!         [--seed 42] [--routes 64] [--verify] [--open-loop] [--ramp MS]
//!         [--backend sim|fast|differential] [--drain] [--shutdown]
//!         [--spans] [--stats-interval MS]
//! ```
//!
//! `--conns` connections each submit `--jobs` batches of `--batch`
//! seeded [`Workload`](memsync_netapp::Workload) packets. Closed-loop
//! (default) retries `Busy` with backoff, so every generated packet is
//! eventually served; `--open-loop` submits once and counts refused
//! batches instead. `--routes` must match the server's FIB (checked
//! against the negotiated [`ServerHello`](memsync_serve::ServerHello));
//! `--backend` asserts which engine the server is running.
//!
//! `--ramp MS` switches to fan-in mode for high connection counts: a
//! small pool of worker threads (at most 8) multiplexes all `--conns`
//! connections instead of one thread each, opens are paced evenly across
//! the `MS`-millisecond ramp window, and each worker pipelines submits —
//! send on every connection first, then collect every response — so all
//! connections stay in flight at once. Connections that fail to open are
//! counted (`open_failures` in the summary) and skipped, not fatal. The
//! ramp/open phase is excluded from the timed throughput window.
//! Fan-in mode is closed-loop only (`Busy` is resent after a pause).
//!
//! `--churn RATE` exercises the protocol-v3 control plane while the
//! load runs: a dedicated control connection alternates add/withdraw
//! frames of 32 routes in the benchmarking prefix space `198.18.0.0/15`
//! (disjoint from the synthetic FIB, so forwarding verdicts are
//! unaffected), paced closed-loop to `RATE` route mutations per second.
//! Every reply's `applied` count is checked against the local oracle —
//! an add of 32 fresh routes must apply 32, the matching withdraw must
//! apply 32 — so a single lost update fails the run. After the load
//! window the final stats snapshot must show the route count back at
//! its pre-churn baseline and `fib.retired == fib.generation - 1` (no
//! shard still references a pre-swap table). Requires a server that
//! advertises the control capability.
//!
//! `--spans` tags every submit with a client-assigned span id
//! (`conn << 32 | batch_index`), so a `--trace-spans` server exports
//! spans the offline waterfall can correlate back to this run. It
//! requires the server to advertise the tracing capability.
//! `--stats-interval MS` subscribes a side connection to the server's
//! stats stream and prints one machine-readable `STATS` line per push.
//!
//! Every batch round trip is timed client-side; the summary reports the
//! nearest-rank p50/p99 in microseconds (`rtt_p50_us`/`rtt_p99_us`). In
//! fan-in mode the clock runs from a lane's pipelined send to its
//! response being collected, so it is completion latency under full
//! fan-in, not an isolated ping.
//!
//! Every run ends with one `SUMMARY key=value ...` line for scripts.
//! Exits non-zero on any verify mismatch, on a forwarded+dropped total
//! that does not account for every accepted packet, or (via the typed
//! stats snapshot) on any server-side lost update. With `--drain` the
//! run finishes with a drain frame (and checks it succeeds); `--shutdown`
//! additionally stops the server.

use memsync_netapp::fib::Route;
use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::{BackendKind, Client, Response, SubmitOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num_arg(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn connect(addr: &str) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect to serve")
}

/// One connection's closed- or open-loop run. With `spans`, each submit
/// carries the client-assigned span id `conn << 32 | batch_index`.
#[allow(clippy::too_many_arguments)]
fn run_conn(
    addr: &str,
    conn: u64,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    base_options: SubmitOptions,
    open_loop: bool,
    spans: bool,
) -> (BatchResult, u64, u64, Vec<u64>) {
    let mut client = connect(addr);
    assert_eq!(
        client.server().routes as usize,
        routes,
        "--routes disagrees with the server's FIB"
    );
    let w = Workload::generate(seed, jobs * batch, routes);
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    let mut rtts = Vec::with_capacity(jobs);
    for (i, chunk) in w.packets.chunks(batch).enumerate() {
        let options = if spans {
            base_options.span(conn << 32 | i as u64)
        } else {
            base_options
        };
        let sent = Instant::now();
        if open_loop {
            match client.submit_once(chunk, options).expect("submit") {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    totals.forwarded += forwarded;
                    totals.dropped += dropped;
                    totals.mismatches += mismatches;
                    submitted += chunk.len() as u64;
                    rtts.push(sent.elapsed().as_nanos() as u64);
                }
                Response::Busy(_) => refused += 1,
                other => panic!("unexpected submit response: {other:?}"),
            }
        } else {
            let r = client.submit(chunk, options).expect("closed-loop submit");
            totals.forwarded += r.forwarded;
            totals.dropped += r.dropped;
            totals.mismatches += r.mismatches;
            totals.busy_retries += r.busy_retries;
            submitted += chunk.len() as u64;
            rtts.push(sent.elapsed().as_nanos() as u64);
        }
    }
    (totals, submitted, refused, rtts)
}

/// One fan-in worker: owns every `workers`-th connection (interleaved so
/// each worker's open deadlines are evenly spaced across the ramp), opens
/// each at its paced deadline, then drives all of them through `jobs`
/// pipelined rounds — send one batch on every connection first, then
/// collect every response — so the worker keeps all its connections in
/// flight instead of serializing round trips. Returns the aggregated
/// batch totals, packets submitted, the open-failure count, and one
/// send-to-collected latency sample per completed batch (the pipelined
/// completion time a real client would observe at this fan-in, not an
/// isolated ping).
#[allow(clippy::too_many_arguments)]
fn run_fanin_worker(
    addr: &str,
    worker: usize,
    workers: usize,
    conns: usize,
    epoch: Instant,
    ramp: Duration,
    start: &Barrier,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    base_options: SubmitOptions,
    spans: bool,
) -> (BatchResult, u64, u64, Vec<u64>) {
    struct Lane {
        client: Client,
        packets: Vec<memsync_netapp::Ipv4Packet>,
        span_base: u64,
    }
    let mut lanes: Vec<Lane> = Vec::new();
    let mut open_failures = 0u64;
    for g in (worker..conns).step_by(workers) {
        let due = epoch + ramp.mul_f64(g as f64 / conns as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match Client::builder().connect(addr) {
            Ok(client) => {
                assert_eq!(
                    client.server().routes as usize,
                    routes,
                    "--routes disagrees with the server's FIB"
                );
                let w = Workload::generate(seed.wrapping_add(g as u64), jobs * batch, routes);
                lanes.push(Lane {
                    client,
                    packets: w.packets,
                    span_base: (g as u64) << 32,
                });
            }
            Err(e) => {
                eprintln!("open failure for connection {g}: {e}");
                open_failures += 1;
            }
        }
    }
    // Every worker finished its ramp; the timed window starts at this
    // barrier (the main thread waits on it too, then stamps t0).
    start.wait();
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut rtts = Vec::with_capacity(jobs * lanes.len());
    let mut sent_at: Vec<Instant> = Vec::with_capacity(lanes.len());
    for round in 0..jobs {
        sent_at.clear();
        for lane in &mut lanes {
            let chunk = &lane.packets[round * batch..(round + 1) * batch];
            let options = if spans {
                base_options.span(lane.span_base | round as u64)
            } else {
                base_options
            };
            sent_at.push(Instant::now());
            lane.client
                .submit_send(chunk, options)
                .expect("pipelined submit send");
        }
        for (i, lane) in lanes.iter_mut().enumerate() {
            loop {
                match lane.client.submit_recv().expect("pipelined submit recv") {
                    Response::Batch {
                        forwarded,
                        dropped,
                        mismatches,
                    } => {
                        totals.forwarded += forwarded;
                        totals.dropped += dropped;
                        totals.mismatches += mismatches;
                        submitted += batch as u64;
                        rtts.push(sent_at[i].elapsed().as_nanos() as u64);
                        break;
                    }
                    Response::Busy(_) => {
                        totals.busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(1));
                        let chunk = &lane.packets[round * batch..(round + 1) * batch];
                        let options = if spans {
                            base_options.span(lane.span_base | round as u64)
                        } else {
                            base_options
                        };
                        lane.client
                            .submit_send(chunk, options)
                            .expect("busy resend");
                    }
                    other => panic!("unexpected submit response: {other:?}"),
                }
            }
        }
    }
    (totals, submitted, open_failures, rtts)
}

/// Route mutations per control frame under `--churn`. The rate is
/// paced in whole frames, so the effective rate rounds to a multiple
/// of this.
const CHURN_BATCH: usize = 32;

/// What the churn thread observed, checked against the server's final
/// stats snapshot after the load window closes.
struct ChurnReport {
    /// Route mutations the server acknowledged (adds + withdraws).
    ops: u64,
    /// Control frames sent.
    frames: u64,
    /// Batch entries the server failed to apply — any add of fresh
    /// routes or withdraw of present routes that applied fewer than it
    /// carried. Must be zero.
    lost: u64,
    /// `fib.routes` before the first mutation; the table must return to
    /// this once churn stops (every add is paired with its withdraw).
    baseline_routes: u64,
    /// Table generation before the first mutation.
    first_generation: u64,
}

/// The `--churn` worker: alternates add/withdraw control frames of
/// [`CHURN_BATCH`] routes in `198.18.0.0/15` (RFC 2544 benchmarking
/// space — disjoint from the synthetic FIB's `10.x.0.0/16` /
/// `192.168.x.0/24` prefixes) on a dedicated connection, paced to
/// `rate` route mutations per second. Each iteration completes its
/// add/withdraw pair even if `stop` flips mid-cycle, so the table
/// always ends at its baseline.
fn run_churn(addr: &str, rate: u64, stop: &AtomicBool) -> ChurnReport {
    let mut client = connect(addr);
    let routes: Vec<Route> = (0..CHURN_BATCH as u32)
        .map(|i| Route {
            prefix: 0xC612_0000 | (i << 8), // 198.18.i.0
            len: 24,
            next_hop: 9_000 + i,
        })
        .collect();
    let prefixes: Vec<(u32, u8)> = routes.iter().map(|r| (r.prefix, r.len)).collect();
    let fib = client
        .stats()
        .expect("stats frame")
        .fib
        .expect("control-capable server renders a fib section");
    let mut report = ChurnReport {
        ops: 0,
        frames: 0,
        lost: 0,
        baseline_routes: fib.routes,
        first_generation: fib.generation,
    };
    let frame_interval = Duration::from_secs_f64(CHURN_BATCH as f64 / rate as f64);
    let mut due = Instant::now();
    let mut pace = || {
        due += frame_interval;
        // Closed-loop: if the server is slower than the pace, carry on
        // immediately instead of accumulating a send burst.
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        } else {
            due = Instant::now();
        }
    };
    while !stop.load(Ordering::Relaxed) {
        let added = client.route_add(&routes).expect("route add frame");
        report.frames += 1;
        report.ops += u64::from(added.applied);
        if (added.applied as usize) < CHURN_BATCH {
            report.lost += (CHURN_BATCH - added.applied as usize) as u64;
        }
        pace();
        let withdrawn = client
            .route_withdraw(&prefixes)
            .expect("route withdraw frame");
        report.frames += 1;
        report.ops += u64::from(withdrawn.applied);
        if (withdrawn.applied as usize) < CHURN_BATCH {
            report.lost += (CHURN_BATCH - withdrawn.applied as usize) as u64;
        }
        pace();
    }
    report
}

/// Nearest-rank percentile over an unsorted sample set, in microseconds.
/// Returns 0 when no batches completed (pure open-loop refusal runs).
fn percentile_us(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] / 1_000
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let conns = num_arg(&args, "--conns", 8) as usize;
    let jobs = num_arg(&args, "--jobs", 100) as usize;
    let batch = num_arg(&args, "--batch", 32) as usize;
    let max_batch = memsync_serve::frame::MAX_SUBMIT_PACKETS;
    assert!(
        batch >= 1 && batch <= max_batch,
        "--batch must be 1..={max_batch} (one submit frame), got {batch}"
    );
    let seed = num_arg(&args, "--seed", 42);
    let routes = num_arg(&args, "--routes", 64) as usize;
    let options = SubmitOptions::new().verify(args.iter().any(|a| a == "--verify"));
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let ramp = arg_value(&args, "--ramp").map(|v| {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--ramp wants milliseconds, got {v}"));
        Duration::from_millis(ms)
    });
    memsync_serve::raise_fd_limit();
    let spans = args.iter().any(|a| a == "--spans");
    let stats_interval = arg_value(&args, "--stats-interval").map(|v| {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--stats-interval wants milliseconds, got {v}"));
        assert!(ms > 0, "--stats-interval must be nonzero");
        Duration::from_millis(ms)
    });
    let expect_backend = arg_value(&args, "--backend").map(|v| {
        v.parse::<BackendKind>()
            .unwrap_or_else(|e| panic!("--backend: {e}"))
    });
    let churn = arg_value(&args, "--churn").map(|v| {
        let rate: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--churn wants route mutations per second, got {v}"));
        assert!(rate > 0, "--churn must be nonzero");
        rate
    });

    // One connection up front to report (and check) what we negotiated.
    {
        let probe = connect(addr.as_str());
        let hello = *probe.server();
        println!(
            "negotiated protocol v{} with {} backend ({} shards, {} egress, {} routes)",
            hello.version, hello.backend, hello.shards, hello.egress, hello.routes
        );
        if let Some(expected) = expect_backend {
            assert_eq!(
                hello.backend, expected,
                "server runs the {} backend, --backend asked for {expected}",
                hello.backend
            );
        }
        if (spans || stats_interval.is_some()) && !probe.supports_tracing() {
            panic!("--spans/--stats-interval need a server that advertises the tracing capability");
        }
        if churn.is_some() && !probe.supports_control() {
            panic!("--churn needs a server that advertises the control capability (protocol v3)");
        }
        drop(probe);
    }

    // The stats-stream monitor rides a dedicated connection so its pushes
    // never interleave with submit traffic. It stops at the first push
    // after the load threads finish.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = stats_interval.map(|every| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let run_start = Instant::now();
        std::thread::spawn(move || {
            let mut client = connect(addr.as_str());
            client
                .stats_stream(every, |snap| {
                    println!(
                        "STATS t={:.2} packets={} pps={:.0} queue_restarts={} lost_updates={}",
                        run_start.elapsed().as_secs_f64(),
                        snap.packets,
                        snap.packets_per_sec,
                        snap.shard_restarts,
                        snap.lost_updates
                    );
                    !stop.load(Ordering::Relaxed)
                })
                .expect("stats stream");
        })
    });

    // The churn worker rides its own control connection for the whole
    // load window; it stops (completing its add/withdraw pair) when the
    // load threads finish.
    let churner = churn.map(|rate| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_churn(&addr, rate, &stop))
    });

    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    let mut open_failures = 0u64;
    let mut rtts: Vec<u64> = Vec::new();
    let elapsed = if let Some(ramp) = ramp {
        // Fan-in mode: a bounded worker pool multiplexes all connections
        // with pipelined submits; the paced open phase is untimed.
        assert!(
            !open_loop,
            "--open-loop is not supported with --ramp (fan-in is closed-loop)"
        );
        let workers = conns.clamp(1, 8);
        let start = Arc::new(Barrier::new(workers + 1));
        let epoch = Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let addr = addr.clone();
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    run_fanin_worker(
                        &addr, k, workers, conns, epoch, ramp, &start, seed, jobs, batch, routes,
                        options, spans,
                    )
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        for h in handles {
            let (t, s, o, r) = h.join().expect("fan-in worker thread");
            totals.forwarded += t.forwarded;
            totals.dropped += t.dropped;
            totals.mismatches += t.mismatches;
            totals.busy_retries += t.busy_retries;
            submitted += s;
            open_failures += o;
            rtts.extend(r);
        }
        t0.elapsed().as_secs_f64()
    } else {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    run_conn(
                        &addr,
                        c as u64,
                        seed.wrapping_add(c as u64),
                        jobs,
                        batch,
                        routes,
                        options,
                        open_loop,
                        spans,
                    )
                })
            })
            .collect();
        for h in handles {
            let (t, s, r, l) = h.join().expect("loadgen connection thread");
            totals.forwarded += t.forwarded;
            totals.dropped += t.dropped;
            totals.mismatches += t.mismatches;
            totals.busy_retries += t.busy_retries;
            submitted += s;
            refused += r;
            rtts.extend(l);
        }
        t0.elapsed().as_secs_f64()
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(m) = monitor {
        m.join().expect("stats monitor thread");
    }
    let churn_report = churner.map(|c| c.join().expect("churn worker thread"));
    let served = u64::from(totals.forwarded) + u64::from(totals.dropped);
    println!(
        "submitted {submitted} packets over {conns} conns in {elapsed:.2}s \
         ({:.0} pkts/sec)",
        submitted as f64 / elapsed
    );
    println!(
        "forwarded {} dropped {} mismatches {} busy_retries {} refused_batches {refused}",
        totals.forwarded, totals.dropped, totals.mismatches, totals.busy_retries
    );
    rtts.sort_unstable();
    let (rtt_p50_us, rtt_p99_us) = (percentile_us(&rtts, 0.50), percentile_us(&rtts, 0.99));
    println!(
        "batch rtt p50 {rtt_p50_us}µs p99 {rtt_p99_us}µs ({} samples)",
        rtts.len()
    );

    let mut failed = false;
    if totals.mismatches > 0 {
        eprintln!("FAIL: {} verify mismatches", totals.mismatches);
        failed = true;
    }
    if open_failures > 0 {
        eprintln!("FAIL: {open_failures} connection opens failed");
        failed = true;
    }
    if served != submitted {
        eprintln!("FAIL: served {served} != submitted {submitted} (silent loss)");
        failed = true;
    }

    // The server-side lost-update detector must stay at zero: paced
    // injection never overwrites an unconsumed guarded value, so any
    // count here is a pacing regression (see `memsync_hic::hazards`).
    // The typed snapshot also exposes supervisor restarts — a shard that
    // crashed under plain traffic is a failure even if totals added up.
    let (lost_updates, shard_restarts, churn_summary) = {
        let mut client = connect(addr.as_str());
        let snap = client.stats().expect("stats frame");
        if snap.lost_updates > 0 {
            eprintln!(
                "FAIL: server reports {} lost updates (unpaced overwrite)",
                snap.lost_updates
            );
            failed = true;
        }
        if snap.shard_restarts > 0 {
            eprintln!(
                "FAIL: {} shard restarts during an uninjected run",
                snap.shard_restarts
            );
            failed = true;
        }
        // Under `--churn` the control plane must come out clean: every
        // acked mutation applied, the table back at its pre-churn route
        // count, the generation advanced, and every superseded table
        // provably retired (`retired == generation - 1`).
        let churn_summary = churn_report.map(|report| {
            let fib = snap
                .fib
                .expect("control-capable server renders a fib section");
            println!(
                "churn: {} route mutations over {} frames, {} generations swapped \
                 (fib at gen {} with {} routes, retired {})",
                report.ops,
                report.frames,
                fib.generation - report.first_generation,
                fib.generation,
                fib.routes,
                fib.retired
            );
            if report.lost > 0 {
                eprintln!(
                    "FAIL: {} churned route mutations were acked but not applied",
                    report.lost
                );
                failed = true;
            }
            if fib.routes != report.baseline_routes {
                eprintln!(
                    "FAIL: fib holds {} routes after churn, expected the pre-churn {}",
                    fib.routes, report.baseline_routes
                );
                failed = true;
            }
            if report.frames > 0 && fib.generation <= report.first_generation {
                eprintln!(
                    "FAIL: fib generation never advanced past {} despite {} control frames",
                    report.first_generation, report.frames
                );
                failed = true;
            }
            if fib.retired != fib.generation - 1 {
                eprintln!(
                    "FAIL: retired generation {} lags the swap barrier (generation {})",
                    fib.retired, fib.generation
                );
                failed = true;
            }
            format!(
                " churn_ops={} churn_frames={} churn_lost={} fib_generation={} fib_retired={}",
                report.ops, report.frames, report.lost, fib.generation, fib.retired
            )
        });
        (snap.lost_updates, snap.shard_restarts, churn_summary)
    };

    // One machine-readable line for scripts (CI greps this).
    println!(
        "SUMMARY submitted={submitted} conns={conns} open_failures={open_failures} \
         forwarded={} dropped={} mismatches={} \
         busy_retries={} refused={refused} elapsed_s={elapsed:.3} pps={:.0} \
         rtt_p50_us={rtt_p50_us} rtt_p99_us={rtt_p99_us} \
         lost_updates={lost_updates} shard_restarts={shard_restarts}{}",
        totals.forwarded,
        totals.dropped,
        totals.mismatches,
        totals.busy_retries,
        submitted as f64 / elapsed,
        churn_summary.as_deref().unwrap_or("")
    );

    if args.iter().any(|a| a == "--drain" || a == "--shutdown") {
        let mut client = connect(addr.as_str());
        match client.drain() {
            Ok(()) => println!("drain complete"),
            Err(e) => {
                eprintln!("FAIL: drain failed: {e}");
                failed = true;
            }
        }
        if args.iter().any(|a| a == "--shutdown") {
            client.shutdown().expect("shutdown frame");
            println!("shutdown sent");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
