//! The `loadgen` bin: seeded traffic against a memsync-serve instance.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--conns 8] [--jobs 100] [--batch 32]
//!         [--seed 42] [--routes 64] [--verify] [--open-loop] [--ramp MS]
//!         [--backend sim|fast|differential] [--drain] [--shutdown]
//!         [--spans] [--stats-interval MS]
//! ```
//!
//! `--conns` connections each submit `--jobs` batches of `--batch`
//! seeded [`Workload`](memsync_netapp::Workload) packets. Closed-loop
//! (default) retries `Busy` with backoff, so every generated packet is
//! eventually served; `--open-loop` submits once and counts refused
//! batches instead. `--routes` must match the server's FIB (checked
//! against the negotiated [`ServerHello`](memsync_serve::ServerHello));
//! `--backend` asserts which engine the server is running.
//!
//! `--ramp MS` switches to fan-in mode for high connection counts: a
//! small pool of worker threads (at most 8) multiplexes all `--conns`
//! connections instead of one thread each, opens are paced evenly across
//! the `MS`-millisecond ramp window, and each worker pipelines submits —
//! send on every connection first, then collect every response — so all
//! connections stay in flight at once. Connections that fail to open are
//! counted (`open_failures` in the summary) and skipped, not fatal. The
//! ramp/open phase is excluded from the timed throughput window.
//! Fan-in mode is closed-loop only (`Busy` is resent after a pause).
//!
//! `--spans` tags every submit with a client-assigned span id
//! (`conn << 32 | batch_index`), so a `--trace-spans` server exports
//! spans the offline waterfall can correlate back to this run. It
//! requires the server to advertise the tracing capability.
//! `--stats-interval MS` subscribes a side connection to the server's
//! stats stream and prints one machine-readable `STATS` line per push.
//!
//! Every batch round trip is timed client-side; the summary reports the
//! nearest-rank p50/p99 in microseconds (`rtt_p50_us`/`rtt_p99_us`). In
//! fan-in mode the clock runs from a lane's pipelined send to its
//! response being collected, so it is completion latency under full
//! fan-in, not an isolated ping.
//!
//! Every run ends with one `SUMMARY key=value ...` line for scripts.
//! Exits non-zero on any verify mismatch, on a forwarded+dropped total
//! that does not account for every accepted packet, or (via the typed
//! stats snapshot) on any server-side lost update. With `--drain` the
//! run finishes with a drain frame (and checks it succeeds); `--shutdown`
//! additionally stops the server.

use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::{BackendKind, Client, Response, SubmitOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num_arg(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn connect(addr: &str) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect to serve")
}

/// One connection's closed- or open-loop run. With `spans`, each submit
/// carries the client-assigned span id `conn << 32 | batch_index`.
#[allow(clippy::too_many_arguments)]
fn run_conn(
    addr: &str,
    conn: u64,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    base_options: SubmitOptions,
    open_loop: bool,
    spans: bool,
) -> (BatchResult, u64, u64, Vec<u64>) {
    let mut client = connect(addr);
    assert_eq!(
        client.server().routes as usize,
        routes,
        "--routes disagrees with the server's FIB"
    );
    let w = Workload::generate(seed, jobs * batch, routes);
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    let mut rtts = Vec::with_capacity(jobs);
    for (i, chunk) in w.packets.chunks(batch).enumerate() {
        let options = if spans {
            base_options.span(conn << 32 | i as u64)
        } else {
            base_options
        };
        let sent = Instant::now();
        if open_loop {
            match client.submit_once(chunk, options).expect("submit") {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    totals.forwarded += forwarded;
                    totals.dropped += dropped;
                    totals.mismatches += mismatches;
                    submitted += chunk.len() as u64;
                    rtts.push(sent.elapsed().as_nanos() as u64);
                }
                Response::Busy(_) => refused += 1,
                other => panic!("unexpected submit response: {other:?}"),
            }
        } else {
            let r = client.submit(chunk, options).expect("closed-loop submit");
            totals.forwarded += r.forwarded;
            totals.dropped += r.dropped;
            totals.mismatches += r.mismatches;
            totals.busy_retries += r.busy_retries;
            submitted += chunk.len() as u64;
            rtts.push(sent.elapsed().as_nanos() as u64);
        }
    }
    (totals, submitted, refused, rtts)
}

/// One fan-in worker: owns every `workers`-th connection (interleaved so
/// each worker's open deadlines are evenly spaced across the ramp), opens
/// each at its paced deadline, then drives all of them through `jobs`
/// pipelined rounds — send one batch on every connection first, then
/// collect every response — so the worker keeps all its connections in
/// flight instead of serializing round trips. Returns the aggregated
/// batch totals, packets submitted, the open-failure count, and one
/// send-to-collected latency sample per completed batch (the pipelined
/// completion time a real client would observe at this fan-in, not an
/// isolated ping).
#[allow(clippy::too_many_arguments)]
fn run_fanin_worker(
    addr: &str,
    worker: usize,
    workers: usize,
    conns: usize,
    epoch: Instant,
    ramp: Duration,
    start: &Barrier,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    base_options: SubmitOptions,
    spans: bool,
) -> (BatchResult, u64, u64, Vec<u64>) {
    struct Lane {
        client: Client,
        packets: Vec<memsync_netapp::Ipv4Packet>,
        span_base: u64,
    }
    let mut lanes: Vec<Lane> = Vec::new();
    let mut open_failures = 0u64;
    for g in (worker..conns).step_by(workers) {
        let due = epoch + ramp.mul_f64(g as f64 / conns as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match Client::builder().connect(addr) {
            Ok(client) => {
                assert_eq!(
                    client.server().routes as usize,
                    routes,
                    "--routes disagrees with the server's FIB"
                );
                let w = Workload::generate(seed.wrapping_add(g as u64), jobs * batch, routes);
                lanes.push(Lane {
                    client,
                    packets: w.packets,
                    span_base: (g as u64) << 32,
                });
            }
            Err(e) => {
                eprintln!("open failure for connection {g}: {e}");
                open_failures += 1;
            }
        }
    }
    // Every worker finished its ramp; the timed window starts at this
    // barrier (the main thread waits on it too, then stamps t0).
    start.wait();
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut rtts = Vec::with_capacity(jobs * lanes.len());
    let mut sent_at: Vec<Instant> = Vec::with_capacity(lanes.len());
    for round in 0..jobs {
        sent_at.clear();
        for lane in &mut lanes {
            let chunk = &lane.packets[round * batch..(round + 1) * batch];
            let options = if spans {
                base_options.span(lane.span_base | round as u64)
            } else {
                base_options
            };
            sent_at.push(Instant::now());
            lane.client
                .submit_send(chunk, options)
                .expect("pipelined submit send");
        }
        for (i, lane) in lanes.iter_mut().enumerate() {
            loop {
                match lane.client.submit_recv().expect("pipelined submit recv") {
                    Response::Batch {
                        forwarded,
                        dropped,
                        mismatches,
                    } => {
                        totals.forwarded += forwarded;
                        totals.dropped += dropped;
                        totals.mismatches += mismatches;
                        submitted += batch as u64;
                        rtts.push(sent_at[i].elapsed().as_nanos() as u64);
                        break;
                    }
                    Response::Busy(_) => {
                        totals.busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(1));
                        let chunk = &lane.packets[round * batch..(round + 1) * batch];
                        let options = if spans {
                            base_options.span(lane.span_base | round as u64)
                        } else {
                            base_options
                        };
                        lane.client
                            .submit_send(chunk, options)
                            .expect("busy resend");
                    }
                    other => panic!("unexpected submit response: {other:?}"),
                }
            }
        }
    }
    (totals, submitted, open_failures, rtts)
}

/// Nearest-rank percentile over an unsorted sample set, in microseconds.
/// Returns 0 when no batches completed (pure open-loop refusal runs).
fn percentile_us(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] / 1_000
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let conns = num_arg(&args, "--conns", 8) as usize;
    let jobs = num_arg(&args, "--jobs", 100) as usize;
    let batch = num_arg(&args, "--batch", 32) as usize;
    let max_batch = memsync_serve::frame::MAX_SUBMIT_PACKETS;
    assert!(
        batch >= 1 && batch <= max_batch,
        "--batch must be 1..={max_batch} (one submit frame), got {batch}"
    );
    let seed = num_arg(&args, "--seed", 42);
    let routes = num_arg(&args, "--routes", 64) as usize;
    let options = SubmitOptions::new().verify(args.iter().any(|a| a == "--verify"));
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let ramp = arg_value(&args, "--ramp").map(|v| {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--ramp wants milliseconds, got {v}"));
        Duration::from_millis(ms)
    });
    memsync_serve::raise_fd_limit();
    let spans = args.iter().any(|a| a == "--spans");
    let stats_interval = arg_value(&args, "--stats-interval").map(|v| {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("--stats-interval wants milliseconds, got {v}"));
        assert!(ms > 0, "--stats-interval must be nonzero");
        Duration::from_millis(ms)
    });
    let expect_backend = arg_value(&args, "--backend").map(|v| {
        v.parse::<BackendKind>()
            .unwrap_or_else(|e| panic!("--backend: {e}"))
    });

    // One connection up front to report (and check) what we negotiated.
    {
        let probe = connect(addr.as_str());
        let hello = *probe.server();
        println!(
            "negotiated protocol v{} with {} backend ({} shards, {} egress, {} routes)",
            hello.version, hello.backend, hello.shards, hello.egress, hello.routes
        );
        if let Some(expected) = expect_backend {
            assert_eq!(
                hello.backend, expected,
                "server runs the {} backend, --backend asked for {expected}",
                hello.backend
            );
        }
        if (spans || stats_interval.is_some()) && !probe.supports_tracing() {
            panic!("--spans/--stats-interval need a server that advertises the tracing capability");
        }
        drop(probe);
    }

    // The stats-stream monitor rides a dedicated connection so its pushes
    // never interleave with submit traffic. It stops at the first push
    // after the load threads finish.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = stats_interval.map(|every| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let run_start = Instant::now();
        std::thread::spawn(move || {
            let mut client = connect(addr.as_str());
            client
                .stats_stream(every, |snap| {
                    println!(
                        "STATS t={:.2} packets={} pps={:.0} queue_restarts={} lost_updates={}",
                        run_start.elapsed().as_secs_f64(),
                        snap.packets,
                        snap.packets_per_sec,
                        snap.shard_restarts,
                        snap.lost_updates
                    );
                    !stop.load(Ordering::Relaxed)
                })
                .expect("stats stream");
        })
    });

    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    let mut open_failures = 0u64;
    let mut rtts: Vec<u64> = Vec::new();
    let elapsed = if let Some(ramp) = ramp {
        // Fan-in mode: a bounded worker pool multiplexes all connections
        // with pipelined submits; the paced open phase is untimed.
        assert!(
            !open_loop,
            "--open-loop is not supported with --ramp (fan-in is closed-loop)"
        );
        let workers = conns.clamp(1, 8);
        let start = Arc::new(Barrier::new(workers + 1));
        let epoch = Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let addr = addr.clone();
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    run_fanin_worker(
                        &addr, k, workers, conns, epoch, ramp, &start, seed, jobs, batch, routes,
                        options, spans,
                    )
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        for h in handles {
            let (t, s, o, r) = h.join().expect("fan-in worker thread");
            totals.forwarded += t.forwarded;
            totals.dropped += t.dropped;
            totals.mismatches += t.mismatches;
            totals.busy_retries += t.busy_retries;
            submitted += s;
            open_failures += o;
            rtts.extend(r);
        }
        t0.elapsed().as_secs_f64()
    } else {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    run_conn(
                        &addr,
                        c as u64,
                        seed.wrapping_add(c as u64),
                        jobs,
                        batch,
                        routes,
                        options,
                        open_loop,
                        spans,
                    )
                })
            })
            .collect();
        for h in handles {
            let (t, s, r, l) = h.join().expect("loadgen connection thread");
            totals.forwarded += t.forwarded;
            totals.dropped += t.dropped;
            totals.mismatches += t.mismatches;
            totals.busy_retries += t.busy_retries;
            submitted += s;
            refused += r;
            rtts.extend(l);
        }
        t0.elapsed().as_secs_f64()
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(m) = monitor {
        m.join().expect("stats monitor thread");
    }
    let served = u64::from(totals.forwarded) + u64::from(totals.dropped);
    println!(
        "submitted {submitted} packets over {conns} conns in {elapsed:.2}s \
         ({:.0} pkts/sec)",
        submitted as f64 / elapsed
    );
    println!(
        "forwarded {} dropped {} mismatches {} busy_retries {} refused_batches {refused}",
        totals.forwarded, totals.dropped, totals.mismatches, totals.busy_retries
    );
    rtts.sort_unstable();
    let (rtt_p50_us, rtt_p99_us) = (percentile_us(&rtts, 0.50), percentile_us(&rtts, 0.99));
    println!(
        "batch rtt p50 {rtt_p50_us}µs p99 {rtt_p99_us}µs ({} samples)",
        rtts.len()
    );

    let mut failed = false;
    if totals.mismatches > 0 {
        eprintln!("FAIL: {} verify mismatches", totals.mismatches);
        failed = true;
    }
    if open_failures > 0 {
        eprintln!("FAIL: {open_failures} connection opens failed");
        failed = true;
    }
    if served != submitted {
        eprintln!("FAIL: served {served} != submitted {submitted} (silent loss)");
        failed = true;
    }

    // The server-side lost-update detector must stay at zero: paced
    // injection never overwrites an unconsumed guarded value, so any
    // count here is a pacing regression (see `memsync_hic::hazards`).
    // The typed snapshot also exposes supervisor restarts — a shard that
    // crashed under plain traffic is a failure even if totals added up.
    let (lost_updates, shard_restarts) = {
        let mut client = connect(addr.as_str());
        let snap = client.stats().expect("stats frame");
        if snap.lost_updates > 0 {
            eprintln!(
                "FAIL: server reports {} lost updates (unpaced overwrite)",
                snap.lost_updates
            );
            failed = true;
        }
        if snap.shard_restarts > 0 {
            eprintln!(
                "FAIL: {} shard restarts during an uninjected run",
                snap.shard_restarts
            );
            failed = true;
        }
        (snap.lost_updates, snap.shard_restarts)
    };

    // One machine-readable line for scripts (CI greps this).
    println!(
        "SUMMARY submitted={submitted} conns={conns} open_failures={open_failures} \
         forwarded={} dropped={} mismatches={} \
         busy_retries={} refused={refused} elapsed_s={elapsed:.3} pps={:.0} \
         rtt_p50_us={rtt_p50_us} rtt_p99_us={rtt_p99_us} \
         lost_updates={lost_updates} shard_restarts={shard_restarts}",
        totals.forwarded,
        totals.dropped,
        totals.mismatches,
        totals.busy_retries,
        submitted as f64 / elapsed
    );

    if args.iter().any(|a| a == "--drain" || a == "--shutdown") {
        let mut client = connect(addr.as_str());
        match client.drain() {
            Ok(()) => println!("drain complete"),
            Err(e) => {
                eprintln!("FAIL: drain failed: {e}");
                failed = true;
            }
        }
        if args.iter().any(|a| a == "--shutdown") {
            client.shutdown().expect("shutdown frame");
            println!("shutdown sent");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
