//! The `loadgen` bin: seeded traffic against a memsync-serve instance.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--conns 8] [--jobs 100] [--batch 32]
//!         [--seed 42] [--routes 64] [--verify] [--open-loop]
//!         [--backend sim|fast|differential] [--drain] [--shutdown]
//! ```
//!
//! `--conns` connections each submit `--jobs` batches of `--batch`
//! seeded [`Workload`](memsync_netapp::Workload) packets. Closed-loop
//! (default) retries `Busy` with backoff, so every generated packet is
//! eventually served; `--open-loop` submits once and counts refused
//! batches instead. `--routes` must match the server's FIB (checked
//! against the negotiated [`ServerHello`](memsync_serve::ServerHello));
//! `--backend` asserts which engine the server is running.
//!
//! Exits non-zero on any verify mismatch, on a forwarded+dropped total
//! that does not account for every accepted packet, or (via the typed
//! stats snapshot) on any server-side lost update. With `--drain` the
//! run finishes with a drain frame (and checks it succeeds); `--shutdown`
//! additionally stops the server.

use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::{BackendKind, Client, Response, SubmitOptions};
use std::time::Instant;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num_arg(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn connect(addr: &str) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect to serve")
}

/// One connection's closed- or open-loop run.
fn run_conn(
    addr: &str,
    seed: u64,
    jobs: usize,
    batch: usize,
    routes: usize,
    options: SubmitOptions,
    open_loop: bool,
) -> (BatchResult, u64, u64) {
    let mut client = connect(addr);
    assert_eq!(
        client.server().routes as usize,
        routes,
        "--routes disagrees with the server's FIB"
    );
    let w = Workload::generate(seed, jobs * batch, routes);
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    for chunk in w.packets.chunks(batch) {
        if open_loop {
            match client.submit_once(chunk, options).expect("submit") {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    totals.forwarded += forwarded;
                    totals.dropped += dropped;
                    totals.mismatches += mismatches;
                    submitted += chunk.len() as u64;
                }
                Response::Busy(_) => refused += 1,
                other => panic!("unexpected submit response: {other:?}"),
            }
        } else {
            let r = client.submit(chunk, options).expect("closed-loop submit");
            totals.forwarded += r.forwarded;
            totals.dropped += r.dropped;
            totals.mismatches += r.mismatches;
            totals.busy_retries += r.busy_retries;
            submitted += chunk.len() as u64;
        }
    }
    (totals, submitted, refused)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let conns = num_arg(&args, "--conns", 8) as usize;
    let jobs = num_arg(&args, "--jobs", 100) as usize;
    let batch = num_arg(&args, "--batch", 32) as usize;
    let max_batch = memsync_serve::frame::MAX_SUBMIT_PACKETS;
    assert!(
        batch >= 1 && batch <= max_batch,
        "--batch must be 1..={max_batch} (one submit frame), got {batch}"
    );
    let seed = num_arg(&args, "--seed", 42);
    let routes = num_arg(&args, "--routes", 64) as usize;
    let options = SubmitOptions::new().verify(args.iter().any(|a| a == "--verify"));
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let expect_backend = arg_value(&args, "--backend").map(|v| {
        v.parse::<BackendKind>()
            .unwrap_or_else(|e| panic!("--backend: {e}"))
    });

    // One connection up front to report (and check) what we negotiated.
    {
        let probe = connect(addr.as_str());
        let hello = *probe.server();
        println!(
            "negotiated protocol v{} with {} backend ({} shards, {} egress, {} routes)",
            hello.version, hello.backend, hello.shards, hello.egress, hello.routes
        );
        if let Some(expected) = expect_backend {
            assert_eq!(
                hello.backend, expected,
                "server runs the {} backend, --backend asked for {expected}",
                hello.backend
            );
        }
        drop(probe);
    }

    let t0 = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_conn(
                    &addr,
                    seed.wrapping_add(c as u64),
                    jobs,
                    batch,
                    routes,
                    options,
                    open_loop,
                )
            })
        })
        .collect();
    let mut totals = BatchResult::default();
    let mut submitted = 0u64;
    let mut refused = 0u64;
    for h in handles {
        let (t, s, r) = h.join().expect("loadgen connection thread");
        totals.forwarded += t.forwarded;
        totals.dropped += t.dropped;
        totals.mismatches += t.mismatches;
        totals.busy_retries += t.busy_retries;
        submitted += s;
        refused += r;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let served = u64::from(totals.forwarded) + u64::from(totals.dropped);
    println!(
        "submitted {submitted} packets over {conns} conns in {elapsed:.2}s \
         ({:.0} pkts/sec)",
        submitted as f64 / elapsed
    );
    println!(
        "forwarded {} dropped {} mismatches {} busy_retries {} refused_batches {refused}",
        totals.forwarded, totals.dropped, totals.mismatches, totals.busy_retries
    );

    let mut failed = false;
    if totals.mismatches > 0 {
        eprintln!("FAIL: {} verify mismatches", totals.mismatches);
        failed = true;
    }
    if served != submitted {
        eprintln!("FAIL: served {served} != submitted {submitted} (silent loss)");
        failed = true;
    }

    // The server-side lost-update detector must stay at zero: paced
    // injection never overwrites an unconsumed guarded value, so any
    // count here is a pacing regression (see `memsync_hic::hazards`).
    // The typed snapshot also exposes supervisor restarts — a shard that
    // crashed under plain traffic is a failure even if totals added up.
    {
        let mut client = connect(addr.as_str());
        let snap = client.stats().expect("stats frame");
        if snap.lost_updates > 0 {
            eprintln!(
                "FAIL: server reports {} lost updates (unpaced overwrite)",
                snap.lost_updates
            );
            failed = true;
        }
        if snap.shard_restarts > 0 {
            eprintln!(
                "FAIL: {} shard restarts during an uninjected run",
                snap.shard_restarts
            );
            failed = true;
        }
    }

    if args.iter().any(|a| a == "--drain" || a == "--shutdown") {
        let mut client = connect(addr.as_str());
        match client.drain() {
            Ok(()) => println!("drain complete"),
            Err(e) => {
                eprintln!("FAIL: drain failed: {e}");
                failed = true;
            }
        }
        if args.iter().any(|a| a == "--shutdown") {
            client.shutdown().expect("shutdown frame");
            println!("shutdown sent");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
