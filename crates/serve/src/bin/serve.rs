//! The `serve` bin: run a memsync-serve instance until a shutdown frame.
//!
//! ```text
//! serve [--addr 127.0.0.1:7171] [--shards 4] [--egress 4] [--routes 64]
//!       [--queue-cap 64] [--batch-max 64] [--org arbitrated|event-driven]
//!       [--backend sim|fast|differential] [--opt 0|1]
//!       [--frontend threads|reactor] [--reactor-threads N] [--max-conns N]
//!       [--tracing] [--trace-spans FILE] [--trace-sample N] [--trace-slow-us N]
//! ```
//!
//! `--backend` picks the forwarding engine each shard runs: `sim` (the
//! cycle-accurate reference), `fast` (the compiled functional fast path),
//! or `differential` (both, cross-checked frame by frame — a divergence
//! crashes the shard loudly). `--opt` sets the middle-end optimization
//! level the `sim` and `differential` backends compile the application
//! FSMs at (default 0). Prints `listening on <addr>` once the
//! socket is bound (the loopback CI job waits for that line), then blocks
//! until a client sends a shutdown frame and exits 0.
//!
//! `--frontend` picks the connection plane: `threads` (default; one
//! blocking thread per connection) or `reactor` (epoll event loop —
//! thousands of connections on a few threads). `--reactor-threads N`
//! sets the reactor thread count (0 = one per CPU); `--max-conns` caps
//! open connections (default 10000, both frontends). The soft fd limit
//! is raised to the hard limit at startup either way.
//!
//! Tracing is off by default (the hot path stays allocation-free).
//! `--tracing` turns on per-request stage timing; `--trace-spans FILE`
//! additionally exports every span as JSONL to `FILE` (and implies
//! `--tracing`). `--trace-sample N` keeps 1-in-N spans in the live rings
//! (default 16); `--trace-slow-us N` sets the always-keep slow threshold
//! in microseconds (default 5000).

use memsync_core::{OptLevel, OrganizationKind};
use memsync_serve::{BackendKind, FrontendKind, ServeConfig, Server, TracingConfig};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usize_arg(args: &[String], key: &str, default: usize) -> usize {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} wants a number, got {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let defaults = ServeConfig::default();
    let trace_defaults = TracingConfig::default();
    let spans_path = arg_value(&args, "--trace-spans");
    let tracing = TracingConfig {
        enabled: args.iter().any(|a| a == "--tracing") || spans_path.is_some(),
        sample_every: usize_arg(
            &args,
            "--trace-sample",
            trace_defaults.sample_every as usize,
        ) as u32,
        slow_ns: arg_value(&args, "--trace-slow-us")
            .map(|v| {
                let us: u64 = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--trace-slow-us wants a number, got {v}"));
                us.saturating_mul(1_000)
            })
            .unwrap_or(trace_defaults.slow_ns),
        spans_path,
    };
    let config = ServeConfig {
        tracing,
        shards: usize_arg(&args, "--shards", defaults.shards),
        egress: usize_arg(&args, "--egress", defaults.egress),
        routes: usize_arg(&args, "--routes", defaults.routes),
        queue_cap: usize_arg(&args, "--queue-cap", defaults.queue_cap),
        batch_max: usize_arg(&args, "--batch-max", defaults.batch_max),
        organization: match arg_value(&args, "--org").as_deref() {
            None | Some("arbitrated") => OrganizationKind::Arbitrated,
            Some("event-driven") => OrganizationKind::EventDriven,
            Some(other) => panic!("unknown organization {other}"),
        },
        backend: match arg_value(&args, "--backend") {
            None => defaults.backend,
            Some(v) => v
                .parse::<BackendKind>()
                .unwrap_or_else(|e| panic!("--backend: {e}")),
        },
        opt: match arg_value(&args, "--opt") {
            None => defaults.opt,
            Some(v) => v
                .parse::<OptLevel>()
                .unwrap_or_else(|e| panic!("--opt: {e}")),
        },
        frontend: match arg_value(&args, "--frontend") {
            None => defaults.frontend,
            Some(v) => v
                .parse::<FrontendKind>()
                .unwrap_or_else(|e| panic!("--frontend: {e}")),
        },
        reactor_threads: usize_arg(&args, "--reactor-threads", defaults.reactor_threads),
        max_conns: usize_arg(&args, "--max-conns", defaults.max_conns),
        ..defaults
    };
    memsync_serve::raise_fd_limit();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let shards = config.shards;
    let backend = config.backend;
    let frontend = config.frontend;
    let trace_note = if config.tracing.enabled {
        match &config.tracing.spans_path {
            Some(p) => format!("tracing on, spans -> {p}"),
            None => "tracing on".into(),
        }
    } else {
        String::new()
    };
    let server = Server::start(addr.as_str(), config).expect("bind serve address");
    println!(
        "listening on {} ({} shards, {backend} backend, {frontend} frontend)",
        server.local_addr(),
        shards
    );
    if !trace_note.is_empty() {
        println!("{trace_note}");
    }
    server.wait();
    println!("shutdown complete");
}
