//! Shard threads: each owns one forwarding backend and batches queued
//! packets through it.
//!
//! A shard activation pops as many jobs as fit under
//! [`crate::ServeConfig::batch_max`] packets and runs them through the
//! configured [`ForwardingBackend`] in one go — amortizing queue locking,
//! stats updates, and egress draining over up to K packets. The backend
//! contract guarantees lossless, in-order frames per descriptor: the
//! cycle-accurate [`crate::backend::SimBackend`] paces injection
//! internally (guarded locations have sampling semantics — an unpaced
//! burst would silently lose packets, see
//! `pipeline::tests::unpaced_injection_overwrites_and_loses_packets`),
//! the [`crate::backend::FastBackend`] is paced by construction, and
//! [`crate::backend::DifferentialBackend`] cross-checks both. Outcomes
//! are classified with the FIB oracle; in verify mode every egress frame
//! is additionally checked against the software pipeline model
//! ([`crate::pipeline::expected_frame`]).

use crate::backend::{self, ForwardingBackend};
use crate::pipeline::PipelineModel;
use crate::queue::{Job, JobOutcome, ShardQueue};
use crate::tables::EpochTables;
use crate::tracing::StageTimings;
use crate::ServeConfig;
use memsync_netapp::fib::{synthetic_table, Dir24_8, Route};
use memsync_netapp::{Fib, Ipv4Packet};
use memsync_trace::MetricsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The route-lookup state every shard shares: the binary-trie [`Fib`]
/// (the semantic reference) and the flat [`Dir24_8`] classifier compiled
/// from it (what the hot path probes — two dependent loads per address
/// instead of a trie walk).
///
/// The flat table costs ~32 MiB, so the server builds **one** generation
/// of it at a time — the boot table at startup, and a fresh one per
/// control-plane swap ([`crate::tables::EpochTables`]). Shards hold a
/// clone of the current generation's `Arc` and re-clone only when the
/// generation counter moves, so restarted incarnations and steady-state
/// batches alike never pay a rebuild.
#[derive(Debug)]
pub struct ShardTables {
    /// The trie the table was compiled from (oracle / verify reference).
    pub fib: Fib,
    /// The DIR-24-8 classifier serving hot-path lookups.
    pub dir: Dir24_8,
}

impl ShardTables {
    /// Builds the synthetic `routes`-entry table and compiles the flat
    /// classifier from it.
    pub fn build(routes: usize) -> ShardTables {
        let fib = synthetic_table(routes);
        let dir = Dir24_8::from_fib(&fib);
        ShardTables { fib, dir }
    }

    /// Builds a table pair from an explicit route list (the control
    /// worker compiles each published generation through this).
    pub fn from_routes(routes: &[Route]) -> ShardTables {
        let mut fib = Fib::new();
        for r in routes {
            fib.insert(*r);
        }
        let dir = Dir24_8::from_fib(&fib);
        ShardTables { fib, dir }
    }
}

/// A direct-mapped route-resolution cache in front of the [`Dir24_8`]
/// classifier.
///
/// Flow routing sends every packet of a dst prefix to the same shard, so
/// a shard's batches are dominated by repeat destinations; caching the
/// "does this dst resolve?" verdict turns even the flat-table probe into
/// a single array access. Classification stays exactly
/// [`crate::pipeline::oracle_forwards`]: forward = TTL survives the
/// decrement AND the dst resolves — the TTL decrement never changes the
/// dst, so the resolution verdict is a pure function of the address, and
/// `Dir24_8` agrees with the trie by the differential property test
/// (pinned end to end by `classifier_agrees_with_the_oracle` below).
///
/// The cache is tagged with the table **generation** it was filled
/// against: cached verdicts are pure functions of the address *for one
/// table*, so once tables can swap underneath the shard, a withdrawn
/// route's stale verdict must not survive. [`RouteCache::sync`] flushes
/// every slot when the tag mismatches (pinned by
/// `route_cache_flushes_when_the_generation_moves` below).
struct RouteCache {
    /// The table generation the cached verdicts were computed against.
    generation: u64,
    /// `dst << 1 | resolves`, or `u64::MAX` for an empty slot.
    slots: Vec<u64>,
}

impl RouteCache {
    const SLOTS: usize = 1024;

    fn new(generation: u64) -> Self {
        RouteCache {
            generation,
            slots: vec![u64::MAX; Self::SLOTS],
        }
    }

    /// Re-tags the cache for `generation`, flushing every slot on a
    /// mismatch. A no-op at steady state (same generation).
    fn sync(&mut self, generation: u64) {
        if self.generation != generation {
            self.slots.fill(u64::MAX);
            self.generation = generation;
        }
    }

    /// Whether the oracle data path forwards this packet under `dir`
    /// (which must belong to the generation the cache is synced to).
    fn forwards(&mut self, dir: &Dir24_8, p: &Ipv4Packet) -> bool {
        if p.ttl <= 1 {
            return false;
        }
        let idx = (p.dst.wrapping_mul(0x9e37_79b9) >> 22) as usize;
        let tag = u64::from(p.dst) << 1;
        let slot = self.slots[idx];
        if slot >> 1 == tag >> 1 && slot != u64::MAX {
            return slot & 1 == 1;
        }
        let resolves = dir.lookup(p.dst).is_some();
        self.slots[idx] = tag | u64::from(resolves);
        resolves
    }

    /// Classifies a whole job's packets: `(forwarded, dropped)` counts.
    /// One tight loop per job keeps classification on the batched path
    /// next to the vectorized execute/egress stages.
    fn classify_batch(&mut self, dir: &Dir24_8, packets: &[Ipv4Packet]) -> (u32, u32) {
        let mut forwarded = 0u32;
        for p in packets {
            forwarded += u32::from(self.forwards(dir, p));
        }
        (forwarded, packets.len() as u32 - forwarded)
    }
}

/// Reusable per-activation scratch: the concatenated descriptor batch and
/// the per-job outcomes. Lives across activations so the steady-state
/// batch path performs no allocation.
#[derive(Debug, Default)]
struct BatchScratch {
    descriptors: Vec<u32>,
    outcomes: Vec<JobOutcome>,
}

/// Shared handles between a shard thread, the supervisor, and the stats
/// collector. The queue and flags survive a shard panic; the backend
/// does not (the replacement thread builds a fresh one).
#[derive(Debug)]
pub struct ShardCtx {
    /// Shard index (stable across restarts).
    pub id: usize,
    /// The shard's bounded job queue.
    pub queue: Arc<ShardQueue>,
    /// Serve-level metrics for this shard (merged into stats frames).
    pub stats: Arc<Mutex<MetricsRegistry>>,
    /// Service-wide stop flag (set by shutdown).
    pub stop: Arc<AtomicBool>,
    /// Fault injection: when set, the shard panics on its next
    /// activation (cleared by the replacement).
    pub die: Arc<AtomicBool>,
    /// False while the shard is mid-activation (drain waits on this).
    pub idle: Arc<AtomicBool>,
    /// The generation-swapped route tables shared across shards *and*
    /// restarts. The shard clones the current generation's `Arc` and
    /// re-clones only when the generation counter moves.
    pub tables: Arc<EpochTables>,
    /// Highest table generation this shard has synced to — the shard's
    /// acknowledgement in the control plane's drain barrier.
    pub gen_seen: Arc<AtomicU64>,
    /// Service configuration.
    pub config: ServeConfig,
}

/// Processes one coalesced batch: execute, classify, verify, reply.
///
/// `picked_at` is the instant the activation popped its first job —
/// `Some` only when request tracing is on. Everything timing-related
/// hangs off it: `None` means not a single `Instant::now` call on this
/// path.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    backend: &mut dyn ForwardingBackend,
    model: &PipelineModel,
    tables: &ShardTables,
    classifier: &mut RouteCache,
    jobs: &mut Vec<Job>,
    scratch: &mut BatchScratch,
    shard_id: usize,
    stats: &Mutex<MetricsRegistry>,
    picked_at: Option<Instant>,
) {
    scratch.descriptors.clear();
    for j in jobs.iter() {
        scratch
            .descriptors
            .extend(j.packets.iter().map(Ipv4Packet::descriptor));
    }
    let n = scratch.descriptors.len();
    let before = backend.metrics();
    let lost_before = backend.lost_updates();
    let exec_start = picked_at.map(|_| Instant::now());
    backend.submit_batch(&scratch.descriptors);
    // Counters advance at submit time (the backend contract), so the
    // batch's deltas are read *before* the zero-copy drain borrows the
    // backend for the rest of the activation.
    let after = backend.metrics();
    let sim_cycles = after.sim_cycles - before.sim_cycles;
    // A conforming backend never overwrites an unconsumed guarded value;
    // a nonzero delta here is the lost-update bug the static pass
    // (`memsync-lint`) guards against, resurfacing at runtime.
    let lost_updates = backend.lost_updates() - lost_before;
    let egress_start = picked_at.map(|_| Instant::now());

    // Walk the concatenated batch job by job against the borrowed egress
    // lanes — the backend's own arena buffers, never copied out.
    scratch.outcomes.clear();
    let mut totals = JobOutcome::default();
    {
        let frames = backend.drain_egress();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(
                f.len(),
                n,
                "shard {shard_id}: egress e{i} returned {} frames for {n} descriptors",
                f.len()
            );
        }
        let mut offset = 0usize;
        for job in jobs.iter() {
            let (forwarded, dropped) = classifier.classify_batch(&tables.dir, &job.packets);
            let mut out = JobOutcome {
                forwarded,
                dropped,
                ..JobOutcome::default()
            };
            if job.options.verify {
                for (k, p) in job.packets.iter().enumerate() {
                    let desc = p.descriptor();
                    let bad = frames
                        .iter()
                        .enumerate()
                        .any(|(i, f)| f[offset + k] != model.frame(desc, i));
                    if bad {
                        out.mismatches += 1;
                    }
                }
            }
            offset += job.packets.len();
            totals.forwarded += out.forwarded;
            totals.dropped += out.dropped;
            totals.mismatches += out.mismatches;
            scratch.outcomes.push(out);
        }
    }

    // Attach stage timings to every outcome. Queue residency is per job;
    // coalesce/execute/egress are activation-level durations attributed
    // whole to each job in the batch (documented on [`StageTimings`]), as
    // are the backend-reported sim-cycle and frame deltas.
    if let (Some(pick), Some(exec_s), Some(egress_s)) = (picked_at, exec_start, egress_start) {
        let coalesce_ns = exec_s.saturating_duration_since(pick).as_nanos() as u64;
        let execute_ns = egress_s.saturating_duration_since(exec_s).as_nanos() as u64;
        let egress_ns = egress_s.elapsed().as_nanos() as u64;
        let frames_emitted = after.frames - before.frames;
        for (job, out) in jobs.iter().zip(scratch.outcomes.iter_mut()) {
            out.timings = Some(StageTimings {
                shard: shard_id as u16,
                packets: job.packets.len() as u32,
                queue_ns: pick.saturating_duration_since(job.enqueued).as_nanos() as u64,
                coalesce_ns,
                execute_ns,
                egress_ns,
                sim_cycles,
                frames: frames_emitted,
            });
        }
    }

    // Record stats *before* replying: a client that queries stats right
    // after its submit response must already see this batch.
    {
        let mut reg = stats.lock().unwrap_or_else(PoisonError::into_inner);
        reg.add("serve.packets", n as u64);
        reg.add("serve.forwarded", u64::from(totals.forwarded));
        reg.add("serve.dropped", u64::from(totals.dropped));
        reg.add("serve.mismatches", u64::from(totals.mismatches));
        reg.add("serve.lost_updates", lost_updates);
        reg.add("serve.sim_cycles", sim_cycles);
        reg.inc("serve.batches");
        reg.record("serve.batch_size", n as u64);
        for job in jobs.iter() {
            reg.record(
                "serve.service_latency_us",
                job.enqueued.elapsed().as_micros() as u64,
            );
        }
        // Shard-side stage histograms feed the live tracing views; the
        // identical numbers ride the outcomes into span records, so the
        // offline JSONL and the stats frame agree bucket for bucket.
        for out in &scratch.outcomes {
            if let Some(t) = out.timings {
                reg.record_bucket("serve.stage.queue_ns", t.queue_ns);
                reg.record_bucket("serve.stage.coalesce_ns", t.coalesce_ns);
                reg.record_bucket("serve.stage.execute_ns", t.execute_ns);
                reg.record_bucket("serve.stage.egress_ns", t.egress_ns);
            }
        }
    }
    // Drain (not consume) both vectors so their capacity survives into
    // the next activation.
    for (job, out) in jobs.drain(..).zip(scratch.outcomes.drain(..)) {
        // A receiver that went away (connection dropped mid-flight) is
        // not the shard's problem.
        let _ = job.reply.send(out);
    }
}

/// The shard thread body: loops popping and processing batches until the
/// stop flag rises. Panics (deliberate via the kill flag, real bugs, or a
/// differential-backend divergence) unwind out of here into the
/// supervisor's restart path.
pub fn run(ctx: &ShardCtx) {
    let mut backend = backend::build(&ctx.config);
    let model = PipelineModel::new();
    let (mut generation, mut tables) = ctx.tables.current();
    let mut classifier = RouteCache::new(generation);
    // Acknowledge the generation this incarnation booted on: a shard
    // restarted mid-swap syncs here, so the control worker's drain
    // barrier never waits on a dead incarnation.
    ctx.gen_seen.store(generation, Ordering::Release);
    let mut jobs: Vec<Job> = Vec::new();
    let mut scratch = BatchScratch::default();
    while !ctx.stop.load(Ordering::Acquire) {
        // Table-swap check: one atomic load per iteration. When the
        // control worker publishes a new generation, re-clone the table
        // Arc, flush the route cache, and acknowledge — after the store
        // this shard provably never reads an older generation again,
        // which is exactly what retirement needs. No lock is taken
        // unless the counter actually moved.
        if ctx.tables.generation() != generation {
            let (fresh_gen, fresh) = ctx.tables.current();
            generation = fresh_gen;
            tables = fresh;
            classifier.sync(generation);
            ctx.gen_seen.store(generation, Ordering::Release);
        }
        // The busy pop clears the idle flag under the queue lock, so a
        // drain that sees the queue empty afterwards also sees the shard
        // busy — quiescent() can't fire mid-handoff. The control worker
        // nudges this condvar on publish ([`ShardQueue::notify`]), so a
        // parked shard acks a swap in microseconds, not a poll period.
        let Some(first) = ctx
            .queue
            .pop_timeout_busy(Duration::from_millis(20), &ctx.idle)
        else {
            continue;
        };
        let picked_at = ctx.config.tracing.enabled.then(Instant::now);
        if ctx.die.swap(false, Ordering::AcqRel) {
            // Put the job back? No — the kill emulates a crash mid-batch:
            // the job is dropped, its reply channel closes, and the
            // acceptor reports the submit as failed. Lossy only in the
            // sense a real crash is; never silent.
            panic!("shard {} killed by fault injection", ctx.id);
        }
        // Coalesce follow-on jobs up to the activation budget, into the
        // activation-scratch vec (drained by process_batch, capacity
        // kept).
        jobs.clear();
        jobs.push(first);
        let mut packets: usize = jobs[0].packets.len();
        while packets < ctx.config.batch_max {
            match ctx.queue.try_pop() {
                Some(j) => {
                    packets += j.packets.len();
                    jobs.push(j);
                }
                None => break,
            }
        }
        if let Some(throttle) = ctx.config.shard_throttle {
            std::thread::sleep(throttle);
        }
        process_batch(
            backend.as_mut(),
            &model,
            &tables,
            &mut classifier,
            &mut jobs,
            &mut scratch,
            ctx.id,
            &ctx.stats,
            picked_at,
        );
        if ctx.queue.is_empty() {
            ctx.idle.store(true, Ordering::Release);
        }
    }
    ctx.idle.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::frame::SubmitOptions;
    use crate::queue::Reply;
    use memsync_netapp::Workload;
    use std::sync::mpsc::channel;
    use std::time::Instant;

    fn ctx(config: ServeConfig) -> ShardCtx {
        ShardCtx {
            id: 0,
            queue: Arc::new(ShardQueue::new(config.queue_cap)),
            stats: Arc::new(Mutex::new(MetricsRegistry::new())),
            stop: Arc::new(AtomicBool::new(false)),
            die: Arc::new(AtomicBool::new(false)),
            idle: Arc::new(AtomicBool::new(true)),
            tables: Arc::new(EpochTables::new(ShardTables::build(config.routes))),
            gen_seen: Arc::new(AtomicU64::new(0)),
            config,
        }
    }

    #[test]
    fn shard_processes_a_batch_matching_the_oracle_on_every_backend() {
        for kind in [
            BackendKind::Sim,
            BackendKind::Fast,
            BackendKind::Differential,
        ] {
            let config = ServeConfig {
                egress: 2,
                routes: 16,
                backend: kind,
                ..ServeConfig::default()
            };
            let ctx = ctx(config.clone());
            let w = Workload::generate(77, 40, config.routes);
            let (fwd, drop) = w.reference_forward();
            let (tx, rx) = channel();
            ctx.queue
                .try_push(Job {
                    packets: w.packets.clone(),
                    options: SubmitOptions::new().verify(true),
                    reply: Reply::new(tx),
                    enqueued: Instant::now(),
                })
                .unwrap();
            // One manual activation instead of the full thread loop.
            let mut backend = backend::build(&ctx.config);
            let model = PipelineModel::new();
            let (generation, tables) = ctx.tables.current();
            let mut classifier = RouteCache::new(generation);
            let job = ctx.queue.try_pop().unwrap();
            process_batch(
                backend.as_mut(),
                &model,
                &tables,
                &mut classifier,
                &mut vec![job],
                &mut BatchScratch::default(),
                0,
                &ctx.stats,
                None,
            );
            let out = rx.recv().unwrap();
            assert_eq!(out.timings, None, "{kind}: tracing off, no timings");
            assert_eq!(out.forwarded as usize, fwd, "{kind}");
            assert_eq!(out.dropped as usize, drop, "{kind}");
            assert_eq!(out.mismatches, 0, "{kind}: backend matches the model");
            let reg = ctx.stats.lock().unwrap();
            assert_eq!(reg.counter("serve.packets"), 40);
            assert_eq!(reg.counter("serve.batches"), 1);
            assert_eq!(
                reg.counter("serve.lost_updates"),
                0,
                "{kind}: a conforming backend never overwrites an unconsumed value"
            );
            assert_eq!(reg.histogram("serve.batch_size").unwrap().samples(), &[40]);
            if kind == BackendKind::Fast {
                assert_eq!(reg.counter("serve.sim_cycles"), 0, "no simulator ran");
            } else {
                assert!(reg.counter("serve.sim_cycles") > 0);
            }
            assert_eq!(
                reg.histogram("serve.service_latency_us")
                    .unwrap()
                    .summary()
                    .unwrap()
                    .count,
                1
            );
        }
    }

    #[test]
    fn traced_batch_attaches_timings_and_stage_histograms() {
        let config = ServeConfig {
            egress: 2,
            routes: 16,
            backend: BackendKind::Fast,
            ..ServeConfig::default()
        };
        let ctx = ctx(config.clone());
        let w = Workload::generate(9, 24, config.routes);
        let mut backend = backend::build(&ctx.config);
        let model = PipelineModel::new();
        let (generation, tables) = ctx.tables.current();
        let mut classifier = RouteCache::new(generation);
        let (tx, rx) = channel();
        let enqueued = Instant::now();
        process_batch(
            backend.as_mut(),
            &model,
            &tables,
            &mut classifier,
            &mut vec![Job {
                packets: w.packets.clone(),
                options: SubmitOptions::new(),
                reply: Reply::new(tx),
                enqueued,
            }],
            &mut BatchScratch::default(),
            3,
            &ctx.stats,
            Some(Instant::now()),
        );
        let out = rx.recv().unwrap();
        let t = out.timings.expect("tracing on attaches timings");
        assert_eq!(t.shard, 3);
        assert_eq!(t.packets, 24);
        assert_eq!(t.frames, 24 * 2, "one frame per egress lane");
        assert_eq!(t.sim_cycles, 0, "fast backend reports no cycles");
        let reg = ctx.stats.lock().unwrap();
        for stage in [
            "serve.stage.queue_ns",
            "serve.stage.coalesce_ns",
            "serve.stage.execute_ns",
            "serve.stage.egress_ns",
        ] {
            let h = reg.bucket_histogram(stage).unwrap_or_else(|| {
                panic!("stage histogram {stage} missing");
            });
            assert_eq!(h.count(), 1, "{stage}: one sample per job");
        }
        // The histogram saw the same number the span will carry.
        assert_eq!(
            reg.bucket_histogram("serve.stage.execute_ns")
                .unwrap()
                .max(),
            Some(t.execute_ns)
        );
    }

    #[test]
    fn classifier_agrees_with_the_oracle() {
        // The cached classifier — now probing the flat Dir24_8 table —
        // must give the verdict oracle_forwards gives against the trie,
        // including on repeat destinations (cache hits), TTL-dead packets
        // sharing a dst with live ones, and colliding slots.
        let tables = ShardTables::build(64);
        let mut cache = RouteCache::new(1);
        let mut w = Workload::generate(31, 500, 64);
        w.packets[5].ttl = 1;
        w.packets[6].ttl = 0;
        let mut dead_dup = w.packets[0];
        dead_dup.ttl = 1;
        w.packets.push(dead_dup);
        // Two passes so the second is all cache hits.
        for _ in 0..2 {
            for p in &w.packets {
                assert_eq!(
                    cache.forwards(&tables.dir, p),
                    crate::pipeline::oracle_forwards(p, &tables.fib),
                    "classifier diverged from the oracle for {p:?}"
                );
            }
        }
        // classify_batch is just the loop above, batched.
        let want = w
            .packets
            .iter()
            .filter(|p| crate::pipeline::oracle_forwards(p, &tables.fib))
            .count() as u32;
        let (forwarded, dropped) = cache.classify_batch(&tables.dir, &w.packets);
        assert_eq!(forwarded, want);
        assert_eq!(dropped, w.packets.len() as u32 - want);
    }

    #[test]
    fn route_cache_flushes_when_the_generation_moves() {
        // The stale-cache bug the generation tag fixes: withdraw a route
        // after the cache has a positive verdict for a dst under it, swap
        // tables, and the next lookup must say "no route" — not serve the
        // withdrawn hop out of the direct-mapped cache.
        use crate::tables::{ControlOp, EpochTables};
        let epoch = EpochTables::new(ShardTables::from_routes(&[Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 3,
        }]));
        let (generation, tables) = epoch.current();
        let mut cache = RouteCache::new(generation);
        let p = Ipv4Packet::new(1, 0x0a00_0001, 10, 6, 40);
        assert!(cache.forwards(&tables.dir, &p), "route present, cached");
        let r = epoch.mutate(&[ControlOp::Withdraw(vec![(0x0a00_0000, 8)])]);
        let (new_gen, new_tables) = epoch.current();
        assert_eq!(new_gen, r.generation);
        // Without the sync, the stale slot would still answer "resolves"
        // — which is exactly what the old un-tagged cache did.
        cache.sync(new_gen);
        assert!(
            !cache.forwards(&new_tables.dir, &p),
            "withdrawn route must not survive in the cache"
        );
        // Same-generation sync is a no-op: the verdict stays cached.
        cache.sync(new_gen);
        assert!(!cache.forwards(&new_tables.dir, &p));
    }

    #[test]
    fn per_shard_counts_are_seed_deterministic() {
        // Same packets, two fresh shards: byte-identical counters.
        let config = ServeConfig {
            egress: 2,
            routes: 16,
            ..ServeConfig::default()
        };
        let w = Workload::generate(123, 64, config.routes);
        let mut counts = Vec::new();
        for _ in 0..2 {
            let ctx = ctx(config.clone());
            let mut backend = backend::build(&ctx.config);
            let model = PipelineModel::new();
            let (generation, tables) = ctx.tables.current();
            let mut classifier = RouteCache::new(generation);
            let (tx, rx) = channel();
            process_batch(
                backend.as_mut(),
                &model,
                &tables,
                &mut classifier,
                &mut vec![Job {
                    packets: w.packets.clone(),
                    options: SubmitOptions::new().verify(true),
                    reply: Reply::new(tx),
                    enqueued: Instant::now(),
                }],
                &mut BatchScratch::default(),
                0,
                &ctx.stats,
                None,
            );
            let out = rx.recv().unwrap();
            let reg = ctx.stats.lock().unwrap();
            counts.push((
                out,
                reg.counter("serve.forwarded"),
                reg.counter("serve.dropped"),
                reg.counter("serve.sim_cycles"),
            ));
        }
        assert_eq!(counts[0], counts[1]);
    }
}
