//! Shard threads: each owns one compiled forwarding system and batches
//! queued packets through it.
//!
//! A shard activation pops as many jobs as fit under
//! [`crate::ServeConfig::batch_max`] packets and runs them through the
//! simulator in one go — amortizing queue locking, stats updates, and
//! egress draining over up to K packets. *Within* the activation,
//! injection is paced one descriptor at a time: guarded locations have
//! sampling semantics (a producer overwrites an unconsumed value, exactly
//! like the paper's dependency-guarded memory), so an unpaced burst would
//! silently lose packets — see
//! `pipeline::tests::unpaced_injection_overwrites_and_loses_packets`.
//! Outcomes are classified with the FIB oracle; in verify mode every
//! egress frame is additionally checked against the software pipeline
//! model ([`crate::pipeline::expected_frame`]).

use crate::pipeline::{expected_frame, oracle_forwards};
use crate::queue::{Job, JobOutcome, ShardQueue};
use crate::ServeConfig;
use memsync_netapp::fib::synthetic_table;
use memsync_netapp::{Fib, Ipv4Packet};
use memsync_sim::{System, ThreadId};
use memsync_trace::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Upper bound on simulator cycles per activation, scaled by batch size —
/// a stalled pipeline is a shard bug and must surface as a panic (the
/// supervisor restarts the shard; the in-flight job's reply channel drops
/// so the client sees an error, not silence).
const CYCLES_PER_PACKET_BUDGET: u64 = 2_000;

/// Shared handles between a shard thread, the supervisor, and the stats
/// collector. The queue and flags survive a shard panic; the simulator
/// does not (the replacement thread builds a fresh one).
#[derive(Debug)]
pub struct ShardCtx {
    /// Shard index (stable across restarts).
    pub id: usize,
    /// The shard's bounded job queue.
    pub queue: Arc<ShardQueue>,
    /// Serve-level metrics for this shard (merged into stats frames).
    pub stats: Arc<Mutex<MetricsRegistry>>,
    /// Service-wide stop flag (set by shutdown).
    pub stop: Arc<AtomicBool>,
    /// Fault injection: when set, the shard panics on its next
    /// activation (cleared by the replacement).
    pub die: Arc<AtomicBool>,
    /// False while the shard is mid-activation (drain waits on this).
    pub idle: Arc<AtomicBool>,
    /// Service configuration.
    pub config: ServeConfig,
}

/// Builds the shard's simulator: the forwarding application compiled for
/// the configured egress width and organization.
fn build_system(config: &ServeConfig) -> (System, Vec<ThreadId>) {
    let src = memsync_netapp::forwarding::app_source(config.egress);
    let mut compiler = memsync_core::Compiler::new(&src);
    compiler.organization(config.organization).skip_validation();
    let compiled = compiler.compile().expect("forwarding app compiles");
    let sys = System::new(&compiled);
    let ids = (0..config.egress)
        .map(|i| {
            sys.thread_id(&format!("e{i}"))
                .expect("egress thread compiled")
        })
        .collect();
    (sys, ids)
}

/// Processes one coalesced batch: simulate, classify, verify, reply.
fn process_batch(
    sys: &mut System,
    egress: &[ThreadId],
    fib: &Fib,
    jobs: Vec<Job>,
    shard_id: usize,
    stats: &Mutex<MetricsRegistry>,
) {
    let n: usize = jobs.iter().map(|j| j.packets.len()).sum();
    let cycles_before = sys.cycle();
    let lost_before = sys.lost_updates();
    for (k, desc) in jobs
        .iter()
        .flat_map(|j| j.packets.iter().map(Ipv4Packet::descriptor))
        .enumerate()
    {
        sys.push_messages("rx", [i64::from(desc)]);
        assert!(
            sys.run_until_sent(egress, k + 1, CYCLES_PER_PACKET_BUDGET),
            "shard {shard_id}: simulator stalled at packet {k} of {n}"
        );
    }
    let frames: Vec<Vec<i64>> = egress.iter().map(|id| sys.drain_sent(*id)).collect();
    let sim_cycles = sys.cycle() - cycles_before;
    // Paced injection means no producer ever overwrites an unconsumed
    // guarded value; a nonzero delta here is the lost-update bug the
    // static pass (`memsync-lint`) guards against, resurfacing at runtime.
    let lost_updates = sys.lost_updates() - lost_before;

    // Walk the concatenated batch job by job, packet by packet.
    let mut offset = 0usize;
    let mut totals = JobOutcome::default();
    let mut outcomes = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let mut out = JobOutcome::default();
        for (k, p) in job.packets.iter().enumerate() {
            if oracle_forwards(p, fib) {
                out.forwarded += 1;
            } else {
                out.dropped += 1;
            }
            if job.verify {
                let desc = p.descriptor();
                let bad = frames
                    .iter()
                    .enumerate()
                    .any(|(i, f)| f[offset + k] != i64::from(expected_frame(desc, i)));
                if bad {
                    out.mismatches += 1;
                }
            }
        }
        offset += job.packets.len();
        totals.forwarded += out.forwarded;
        totals.dropped += out.dropped;
        totals.mismatches += out.mismatches;
        outcomes.push(out);
    }

    // Record stats *before* replying: a client that queries stats right
    // after its submit response must already see this batch.
    {
        let mut reg = stats.lock().unwrap_or_else(PoisonError::into_inner);
        reg.add("serve.packets", n as u64);
        reg.add("serve.forwarded", u64::from(totals.forwarded));
        reg.add("serve.dropped", u64::from(totals.dropped));
        reg.add("serve.mismatches", u64::from(totals.mismatches));
        reg.add("serve.lost_updates", lost_updates);
        reg.add("serve.sim_cycles", sim_cycles);
        reg.inc("serve.batches");
        reg.record("serve.batch_size", n as u64);
        for job in &jobs {
            reg.record(
                "serve.service_latency_us",
                job.enqueued.elapsed().as_micros() as u64,
            );
        }
    }
    for (job, out) in jobs.into_iter().zip(outcomes) {
        // A receiver that went away (connection dropped mid-flight) is
        // not the shard's problem.
        let _ = job.reply.send(out);
    }
}

/// The shard thread body: loops popping and processing batches until the
/// stop flag rises. Panics (deliberate via the kill flag, or real bugs)
/// unwind out of here into the supervisor's restart path.
pub fn run(ctx: &ShardCtx) {
    let (mut sys, egress) = build_system(&ctx.config);
    let fib = synthetic_table(ctx.config.routes);
    while !ctx.stop.load(Ordering::Acquire) {
        // The busy pop clears the idle flag under the queue lock, so a
        // drain that sees the queue empty afterwards also sees the shard
        // busy — quiescent() can't fire mid-handoff.
        let Some(first) = ctx
            .queue
            .pop_timeout_busy(Duration::from_millis(20), &ctx.idle)
        else {
            continue;
        };
        if ctx.die.swap(false, Ordering::AcqRel) {
            // Put the job back? No — the kill emulates a crash mid-batch:
            // the job is dropped, its reply channel closes, and the
            // acceptor reports the submit as failed. Lossy only in the
            // sense a real crash is; never silent.
            panic!("shard {} killed by fault injection", ctx.id);
        }
        // Coalesce follow-on jobs up to the activation budget.
        let mut jobs = vec![first];
        let mut packets: usize = jobs[0].packets.len();
        while packets < ctx.config.batch_max {
            match ctx.queue.try_pop() {
                Some(j) => {
                    packets += j.packets.len();
                    jobs.push(j);
                }
                None => break,
            }
        }
        if let Some(throttle) = ctx.config.shard_throttle {
            std::thread::sleep(throttle);
        }
        process_batch(&mut sys, &egress, &fib, jobs, ctx.id, &ctx.stats);
        if ctx.queue.is_empty() {
            ctx.idle.store(true, Ordering::Release);
        }
    }
    ctx.idle.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_netapp::Workload;
    use std::sync::mpsc::channel;
    use std::time::Instant;

    fn ctx(config: ServeConfig) -> ShardCtx {
        ShardCtx {
            id: 0,
            queue: Arc::new(ShardQueue::new(config.queue_cap)),
            stats: Arc::new(Mutex::new(MetricsRegistry::new())),
            stop: Arc::new(AtomicBool::new(false)),
            die: Arc::new(AtomicBool::new(false)),
            idle: Arc::new(AtomicBool::new(true)),
            config,
        }
    }

    #[test]
    fn shard_processes_a_batch_matching_the_oracle() {
        let config = ServeConfig {
            egress: 2,
            routes: 16,
            ..ServeConfig::default()
        };
        let ctx = ctx(config.clone());
        let w = Workload::generate(77, 40, config.routes);
        let (fwd, drop) = w.reference_forward();
        let (tx, rx) = channel();
        ctx.queue
            .try_push(Job {
                packets: w.packets.clone(),
                verify: true,
                reply: tx,
                enqueued: Instant::now(),
            })
            .unwrap();
        // One manual activation instead of the full thread loop.
        let (mut sys, egress) = build_system(&ctx.config);
        let fib = synthetic_table(ctx.config.routes);
        let job = ctx.queue.try_pop().unwrap();
        process_batch(&mut sys, &egress, &fib, vec![job], 0, &ctx.stats);
        let out = rx.recv().unwrap();
        assert_eq!(out.forwarded as usize, fwd);
        assert_eq!(out.dropped as usize, drop);
        assert_eq!(out.mismatches, 0, "hardware matches the model");
        let reg = ctx.stats.lock().unwrap();
        assert_eq!(reg.counter("serve.packets"), 40);
        assert_eq!(reg.counter("serve.batches"), 1);
        assert_eq!(
            reg.counter("serve.lost_updates"),
            0,
            "paced injection must never overwrite an unconsumed guarded value"
        );
        assert_eq!(reg.histogram("serve.batch_size").unwrap().samples(), &[40]);
        assert!(reg.counter("serve.sim_cycles") > 0);
        assert_eq!(
            reg.histogram("serve.service_latency_us")
                .unwrap()
                .summary()
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn per_shard_counts_are_seed_deterministic() {
        // Same packets, two fresh shards: byte-identical counters.
        let config = ServeConfig {
            egress: 2,
            routes: 16,
            ..ServeConfig::default()
        };
        let w = Workload::generate(123, 64, config.routes);
        let mut counts = Vec::new();
        for _ in 0..2 {
            let ctx = ctx(config.clone());
            let (mut sys, egress) = build_system(&ctx.config);
            let fib = synthetic_table(ctx.config.routes);
            let (tx, rx) = channel();
            process_batch(
                &mut sys,
                &egress,
                &fib,
                vec![Job {
                    packets: w.packets.clone(),
                    verify: true,
                    reply: tx,
                    enqueued: Instant::now(),
                }],
                0,
                &ctx.stats,
            );
            let out = rx.recv().unwrap();
            let reg = ctx.stats.lock().unwrap();
            counts.push((
                out,
                reg.counter("serve.forwarded"),
                reg.counter("serve.dropped"),
                reg.counter("serve.sim_cycles"),
            ));
        }
        assert_eq!(counts[0], counts[1]);
    }
}
