//! Pluggable forwarding backends.
//!
//! A shard thread does not care *how* a batch of packet descriptors turns
//! into egress frames — only that the semantics match the compiled hic
//! forwarding application. [`ForwardingBackend`] captures exactly that
//! contract, and three implementations plug into it:
//!
//! * [`SimBackend`] — the cycle-accurate [`memsync_sim::System`] under
//!   either memory organization. The reference semantics; throughput is
//!   bounded by simulation speed.
//! * [`FastBackend`] — the compiled forwarding pipeline executed
//!   functionally as a lane-parallel batch engine (the branch-free
//!   structure-of-arrays kernels of [`crate::pipeline`], byte-pinned to
//!   the per-packet oracle). Paced by construction, so `lost_updates` is
//!   structurally 0.
//! * [`DifferentialBackend`] — runs a reference and a candidate backend
//!   side by side and fails loudly on any egress or lost-update
//!   divergence. The honesty backstop: serve traffic at fast-path speed
//!   while the simulator cross-checks every frame.
//!
//! The active backend is negotiated into clients via the protocol v2
//! `Hello` frame ([`crate::frame::ServerHello`]): servers advertise which
//! backends they support as capability bits and which one is serving.

mod differential;
mod fast;
mod sim;

pub use differential::DifferentialBackend;
pub use fast::FastBackend;
pub use sim::SimBackend;

use crate::ServeConfig;

/// Capability bit: the server can run [`SimBackend`].
pub const CAP_SIM: u8 = 0x01;
/// Capability bit: the server can run [`FastBackend`].
pub const CAP_FAST: u8 = 0x02;
/// Capability bit: the server can run [`DifferentialBackend`].
pub const CAP_DIFFERENTIAL: u8 = 0x04;

/// Which forwarding backend a shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Cycle-accurate simulation ([`SimBackend`]).
    #[default]
    Sim,
    /// Functional compiled pipeline ([`FastBackend`]).
    Fast,
    /// Both, cross-checked frame by frame ([`DifferentialBackend`]).
    Differential,
}

impl BackendKind {
    /// The capability bit advertising this backend in a `Hello` frame.
    pub fn cap_bit(self) -> u8 {
        match self {
            BackendKind::Sim => CAP_SIM,
            BackendKind::Fast => CAP_FAST,
            BackendKind::Differential => CAP_DIFFERENTIAL,
        }
    }

    /// The wire encoding of this kind (one byte in the `Hello` frame).
    pub fn wire_code(self) -> u8 {
        match self {
            BackendKind::Sim => 0,
            BackendKind::Fast => 1,
            BackendKind::Differential => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_wire(code: u8) -> Option<BackendKind> {
        match code {
            0 => Some(BackendKind::Sim),
            1 => Some(BackendKind::Fast),
            2 => Some(BackendKind::Differential),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "sim",
            BackendKind::Fast => "fast",
            BackendKind::Differential => "differential",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendKind, String> {
        match s {
            "sim" => Ok(BackendKind::Sim),
            "fast" => Ok(BackendKind::Fast),
            "differential" | "diff" => Ok(BackendKind::Differential),
            other => Err(format!(
                "unknown backend {other:?} (expected sim, fast, or differential)"
            )),
        }
    }
}

/// Every backend this build supports, as `Hello` capability bits.
pub fn capability_bits() -> u8 {
    CAP_SIM | CAP_FAST | CAP_DIFFERENTIAL
}

/// Cumulative execution counters a backend exposes for the stats frame.
/// Counters are monotonic over the backend's lifetime; callers diff
/// before/after a batch for per-batch attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendMetrics {
    /// Simulator cycles consumed so far (0 for the functional fast path).
    pub sim_cycles: u64,
    /// Descriptors executed so far.
    pub descriptors: u64,
    /// Egress frames emitted so far (summed over egress consumers) — the
    /// backend-reported inner detail for request tracing. The fast
    /// backend counts frames as its lanes fill at submit time; the sim
    /// backend counts them as they drain.
    pub frames: u64,
}

/// What a shard needs from a forwarding engine — nothing more.
///
/// The contract mirrors the compiled hic application: [`submit_batch`]
/// feeds packet descriptors to the `rx` thread, after which
/// [`drain_egress`] yields, per egress consumer, one frame per submitted
/// descriptor in submission order (dropped packets flow through too,
/// carrying the in-band `0`-key marker). Implementations must pace
/// injection (or be functionally immune to overwrites) so a conforming
/// backend keeps [`lost_updates`] at 0; the counter exists so a pacing
/// regression is loud, not silent.
///
/// [`submit_batch`]: ForwardingBackend::submit_batch
/// [`drain_egress`]: ForwardingBackend::drain_egress
/// [`lost_updates`]: ForwardingBackend::lost_updates
pub trait ForwardingBackend: Send {
    /// Which implementation this is (stats attribution, `Hello` frames).
    fn kind(&self) -> BackendKind;

    /// Executes a batch of packet descriptors. Frames accumulate until
    /// the next [`ForwardingBackend::drain_egress`]; multiple submits may
    /// precede one drain. Execution counters (including `frames`) advance
    /// at submit time, so a caller can read [`ForwardingBackend::metrics`]
    /// for the batch *before* draining.
    fn submit_batch(&mut self, descriptors: &[u32]);

    /// Every accumulated egress frame as a borrowed view: one lane per
    /// egress consumer, each holding one frame per undrained descriptor,
    /// in submission order.
    ///
    /// Zero-copy contract: the lanes are the backend's own arena buffers,
    /// handed out in place — no per-batch clone. The view stays valid (and
    /// repeated drains return the same frames) until the next
    /// [`ForwardingBackend::submit_batch`], which recycles the drained
    /// lanes' storage for the next batch.
    fn drain_egress(&mut self) -> &[Vec<u32>];

    /// Cumulative guarded-location overwrites of unconsumed values — the
    /// dynamic lost-update detector. Must stay 0 for a conforming
    /// backend.
    fn lost_updates(&self) -> u64;

    /// Cumulative execution counters.
    fn metrics(&self) -> BackendMetrics;
}

/// Builds the configured backend for one shard.
pub fn build(config: &ServeConfig) -> Box<dyn ForwardingBackend> {
    match config.backend {
        BackendKind::Sim => Box::new(SimBackend::with_opt(
            config.egress,
            config.organization,
            config.opt,
        )),
        BackendKind::Fast => Box::new(FastBackend::new(config.egress)),
        BackendKind::Differential => Box::new(DifferentialBackend::new(
            Box::new(SimBackend::with_opt(
                config.egress,
                config.organization,
                config.opt,
            )),
            Box::new(FastBackend::new(config.egress)),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_core::OrganizationKind;
    use memsync_netapp::Workload;

    /// Concatenated per-egress frames from running `descs` through a
    /// backend in `chunk`-sized submit/drain rounds.
    fn run_backend(
        mut b: Box<dyn ForwardingBackend>,
        descs: &[u32],
        chunk: usize,
    ) -> (Vec<Vec<u32>>, u64, BackendMetrics) {
        let mut frames: Vec<Vec<u32>> = Vec::new();
        for batch in descs.chunks(chunk) {
            b.submit_batch(batch);
            for (i, f) in b.drain_egress().iter().enumerate() {
                if frames.len() <= i {
                    frames.push(Vec::new());
                }
                frames[i].extend_from_slice(f);
            }
        }
        (frames, b.lost_updates(), b.metrics())
    }

    #[test]
    fn build_honors_the_configured_kind() {
        for kind in [
            BackendKind::Sim,
            BackendKind::Fast,
            BackendKind::Differential,
        ] {
            let config = ServeConfig {
                egress: 2,
                backend: kind,
                ..ServeConfig::default()
            };
            assert_eq!(build(&config).kind(), kind);
        }
    }

    #[test]
    fn kind_round_trips_through_wire_and_str() {
        for kind in [
            BackendKind::Sim,
            BackendKind::Fast,
            BackendKind::Differential,
        ] {
            assert_eq!(BackendKind::from_wire(kind.wire_code()), Some(kind));
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
            assert_ne!(capability_bits() & kind.cap_bit(), 0);
        }
        assert_eq!(BackendKind::from_wire(9), None);
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    fn backends_agree_frame_for_frame_under_both_organizations() {
        let w = Workload::generate(0xD1FF, 200, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let egress = 3usize;
        let (fast_frames, fast_lost, fast_m) =
            run_backend(Box::new(FastBackend::new(egress)), &descs, 32);
        assert_eq!(fast_lost, 0, "fast is paced by construction");
        assert_eq!(fast_m.descriptors, 200);
        assert_eq!(fast_m.sim_cycles, 0, "no simulator behind the fast path");
        assert_eq!(fast_m.frames, 200 * egress as u64, "one frame per lane");
        for org in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let (sim_frames, sim_lost, sim_m) =
                run_backend(Box::new(SimBackend::new(egress, org)), &descs, 32);
            assert_eq!(sim_lost, 0, "paced sim injection never overwrites");
            assert!(sim_m.sim_cycles > 0);
            assert_eq!(sim_m.frames, fast_m.frames, "same frames counted");
            assert_eq!(
                sim_frames, fast_frames,
                "sim ({org}) and fast egress diverged"
            );
        }
    }

    #[test]
    fn differential_backend_passes_on_agreeing_engines() {
        let w = Workload::generate(7, 150, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let config = ServeConfig {
            egress: 2,
            backend: BackendKind::Differential,
            ..ServeConfig::default()
        };
        let (frames, lost, m) = run_backend(build(&config), &descs, 25);
        assert_eq!(lost, 0);
        assert_eq!(m.descriptors, 150);
        assert_eq!(m.frames, 150 * 2, "reference frames attributed");
        let (fast_frames, _, _) = run_backend(Box::new(FastBackend::new(2)), &descs, 25);
        assert_eq!(frames, fast_frames);
    }
}
