//! The honesty backstop: two forwarding engines run side by side, and any
//! divergence fails loudly.
//!
//! [`DifferentialBackend`] submits every batch to a *reference* backend
//! (normally the cycle-accurate [`crate::backend::SimBackend`]) and a
//! *candidate* (normally [`crate::backend::FastBackend`]), and panics on
//! the first egress frame mismatch or lost-update divergence — frame
//! index, egress consumer, and both values in the message. Inside a serve
//! shard that panic unwinds into the supervisor: the shard restarts, the
//! in-flight submit reports an error, and `shard_restarts` ticks — a
//! semantic bug can never be served silently.

use super::{BackendKind, BackendMetrics, ForwardingBackend};

/// A reference and a candidate backend cross-checked on every drain.
pub struct DifferentialBackend {
    reference: Box<dyn ForwardingBackend>,
    candidate: Box<dyn ForwardingBackend>,
    /// Descriptors cross-checked so far (divergence reporting).
    checked: u64,
}

impl std::fmt::Debug for DifferentialBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DifferentialBackend")
            .field("reference", &self.reference.kind())
            .field("candidate", &self.candidate.kind())
            .field("checked", &self.checked)
            .finish()
    }
}

impl DifferentialBackend {
    /// Cross-checks `candidate` against `reference`.
    pub fn new(
        reference: Box<dyn ForwardingBackend>,
        candidate: Box<dyn ForwardingBackend>,
    ) -> DifferentialBackend {
        DifferentialBackend {
            reference,
            candidate,
            checked: 0,
        }
    }
}

impl ForwardingBackend for DifferentialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Differential
    }

    fn submit_batch(&mut self, descriptors: &[u32]) {
        self.reference.submit_batch(descriptors);
        self.candidate.submit_batch(descriptors);
    }

    fn drain_egress(&mut self) -> &[Vec<u32>] {
        let (rk, ck) = (self.reference.kind(), self.candidate.kind());
        // The comparison borrows both engines' views; it happens in an
        // inner scope so the reference can be re-drained for the returned
        // view afterwards (drains are stable until the next submit, so
        // the second call hands back the same lanes without copying).
        let drained = {
            let want = self.reference.drain_egress();
            let got = self.candidate.drain_egress();
            assert_eq!(
                want.len(),
                got.len(),
                "differential: egress width diverged ({rk} vs {ck})"
            );
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                assert_eq!(
                    w.len(),
                    g.len(),
                    "differential: egress e{i} frame count diverged after {} descriptors \
                     ({rk}: {} frames, {ck}: {})",
                    self.checked,
                    w.len(),
                    g.len()
                );
                for (k, (wf, gf)) in w.iter().zip(g).enumerate() {
                    assert_eq!(
                        wf, gf,
                        "differential: egress e{i} frame {k} diverged after {} descriptors \
                         ({rk}: {wf:#010x}, {ck}: {gf:#010x})",
                        self.checked
                    );
                }
            }
            want.first().map_or(0, |w| w.len() as u64)
        };
        let (rl, cl) = (self.reference.lost_updates(), self.candidate.lost_updates());
        assert_eq!(
            rl, cl,
            "differential: lost-update counters diverged ({rk}: {rl}, {ck}: {cl})"
        );
        self.checked += drained;
        self.reference.drain_egress()
    }

    fn lost_updates(&self) -> u64 {
        // The counters are asserted equal on every drain; between drains
        // the reference is authoritative.
        self.reference.lost_updates()
    }

    fn metrics(&self) -> BackendMetrics {
        // Cycle attribution follows the reference (the candidate's fast
        // path reports 0 cycles); descriptor counts are asserted equal.
        self.reference.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FastBackend, SimBackend};
    use memsync_core::OrganizationKind;
    use memsync_netapp::Workload;

    /// A backend that forwards to an inner engine but corrupts one frame —
    /// the divergence the differential backend must catch.
    struct LyingBackend {
        inner: FastBackend,
        corrupt_at: usize,
        frames: Vec<Vec<u32>>,
    }

    impl ForwardingBackend for LyingBackend {
        fn kind(&self) -> BackendKind {
            self.inner.kind()
        }
        fn submit_batch(&mut self, descriptors: &[u32]) {
            self.inner.submit_batch(descriptors);
        }
        fn drain_egress(&mut self) -> &[Vec<u32>] {
            self.frames = self.inner.drain_egress().to_vec();
            if let Some(f) = self.frames[0].get_mut(self.corrupt_at) {
                *f ^= 0x1;
            }
            &self.frames
        }
        fn lost_updates(&self) -> u64 {
            self.inner.lost_updates()
        }
        fn metrics(&self) -> BackendMetrics {
            self.inner.metrics()
        }
    }

    fn descs(seed: u64, n: usize) -> Vec<u32> {
        Workload::generate(seed, n, 16)
            .packets
            .iter()
            .map(|p| p.descriptor())
            .collect()
    }

    #[test]
    fn agreeing_backends_pass_and_report_reference_metrics() {
        let mut b = DifferentialBackend::new(
            Box::new(SimBackend::new(2, OrganizationKind::EventDriven)),
            Box::new(FastBackend::new(2)),
        );
        let d = descs(11, 60);
        b.submit_batch(&d[..30]);
        b.submit_batch(&d[30..]);
        let frames = b.drain_egress();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].len(), 60);
        assert_eq!(b.lost_updates(), 0);
        assert!(b.metrics().sim_cycles > 0, "reference cycles attributed");
        assert_eq!(b.metrics().descriptors, 60);
    }

    #[test]
    #[should_panic(expected = "differential: egress e0 frame 5 diverged")]
    fn a_single_corrupted_frame_fails_loudly() {
        let mut b = DifferentialBackend::new(
            Box::new(FastBackend::new(2)),
            Box::new(LyingBackend {
                inner: FastBackend::new(2),
                corrupt_at: 5,
                frames: Vec::new(),
            }),
        );
        b.submit_batch(&descs(12, 10));
        let _ = b.drain_egress();
    }

    #[test]
    #[should_panic(expected = "frame count diverged")]
    fn a_missing_frame_fails_loudly() {
        struct Swallow(FastBackend);
        impl ForwardingBackend for Swallow {
            fn kind(&self) -> BackendKind {
                BackendKind::Fast
            }
            fn submit_batch(&mut self, d: &[u32]) {
                // Drops the last descriptor — the lost-packet bug class.
                self.0.submit_batch(&d[..d.len() - 1]);
            }
            fn drain_egress(&mut self) -> &[Vec<u32>] {
                self.0.drain_egress()
            }
            fn lost_updates(&self) -> u64 {
                0
            }
            fn metrics(&self) -> BackendMetrics {
                self.0.metrics()
            }
        }
        let mut b = DifferentialBackend::new(
            Box::new(FastBackend::new(2)),
            Box::new(Swallow(FastBackend::new(2))),
        );
        b.submit_batch(&descs(13, 8));
        let _ = b.drain_egress();
    }
}
