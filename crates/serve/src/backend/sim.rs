//! The cycle-accurate reference backend: a [`memsync_sim::System`]
//! running the compiled forwarding application under either memory
//! organization.
//!
//! This is exactly what every shard ran before backends were pluggable —
//! behavior-preserving by construction (the golden loopback tests pin
//! it). Injection is paced one descriptor at a time via
//! [`System::submit_paced`]: guarded locations have sampling semantics,
//! so an unpaced burst would overwrite unconsumed values and lose
//! packets. Throughput is bounded by simulation speed; use
//! [`crate::backend::FastBackend`] when serving rate matters and
//! [`crate::backend::DifferentialBackend`] to get both.

use super::{BackendKind, BackendMetrics, ForwardingBackend};
use memsync_core::{OptLevel, OrganizationKind};
use memsync_sim::{System, ThreadId};

/// Upper bound on simulator cycles per descriptor — a stalled pipeline is
/// a shard bug and must surface as a panic (the supervisor restarts the
/// shard; the in-flight job's reply channel drops so the client sees an
/// error, not silence).
const CYCLES_PER_PACKET_BUDGET: u64 = 2_000;

/// Cycle-accurate simulation of the compiled forwarding application.
#[derive(Debug)]
pub struct SimBackend {
    sys: System,
    egress: Vec<ThreadId>,
    organization: OrganizationKind,
    /// Accumulated frames, one lane per egress consumer; the zero-copy
    /// view `drain_egress` hands out. Pulled out of the simulator at
    /// submit time (so the pacing base stays 0 and metrics advance with
    /// the submit), recycled on the first submit after a drain.
    lanes: Vec<Vec<u32>>,
    /// Set by `drain_egress`; the next submit clears the consumed lanes.
    drained: bool,
    descriptors: u64,
    frames: u64,
}

impl SimBackend {
    /// Compiles the forwarding application for `egress` consumers under
    /// `organization` (at [`OptLevel::O0`]) and boots a fresh simulator.
    pub fn new(egress: usize, organization: OrganizationKind) -> SimBackend {
        SimBackend::with_opt(egress, organization, OptLevel::O0)
    }

    /// Like [`SimBackend::new`] with an explicit middle-end optimization
    /// level for the compiled thread FSMs.
    pub fn with_opt(egress: usize, organization: OrganizationKind, opt: OptLevel) -> SimBackend {
        let src = memsync_netapp::forwarding::app_source(egress);
        let mut compiler = memsync_core::Compiler::new(&src);
        compiler
            .organization(organization)
            .opt(opt)
            .skip_validation();
        let compiled = compiler.compile().expect("forwarding app compiles");
        let sys = System::new(&compiled);
        let ids = (0..egress)
            .map(|i| {
                sys.thread_id(&format!("e{i}"))
                    .expect("egress thread compiled")
            })
            .collect();
        SimBackend {
            sys,
            egress: ids,
            organization,
            lanes: vec![Vec::new(); egress],
            drained: false,
            descriptors: 0,
            frames: 0,
        }
    }

    /// The memory organization this simulator runs.
    pub fn organization(&self) -> OrganizationKind {
        self.organization
    }
}

impl ForwardingBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn submit_batch(&mut self, descriptors: &[u32]) {
        if self.drained {
            for lane in &mut self.lanes {
                lane.clear();
            }
            self.drained = false;
        }
        let values: Vec<i64> = descriptors.iter().map(|&d| i64::from(d)).collect();
        assert!(
            self.sys
                .submit_paced("rx", &self.egress, &values, 0, CYCLES_PER_PACKET_BUDGET),
            "simulator ({}) stalled inside a {}-descriptor batch",
            self.organization,
            descriptors.len()
        );
        // Pull the batch's frames into the egress lanes now: the
        // simulator's sent queues go back to empty (pacing base 0) and
        // the frame counter advances with the submit, per the trait
        // contract.
        for (lane, &id) in self.lanes.iter_mut().zip(&self.egress) {
            let sent = self.sys.drain_sent(id);
            self.frames += sent.len() as u64;
            lane.extend(sent.into_iter().map(|f| f as u32));
        }
        self.descriptors += descriptors.len() as u64;
    }

    fn drain_egress(&mut self) -> &[Vec<u32>] {
        self.drained = true;
        &self.lanes
    }

    fn lost_updates(&self) -> u64 {
        self.sys.lost_updates()
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            sim_cycles: self.sys.cycle(),
            descriptors: self.descriptors,
            frames: self.frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::expected_frame;
    use memsync_netapp::Workload;

    #[test]
    fn sim_backend_matches_the_per_packet_oracle() {
        let w = Workload::generate(0xBEEF, 30, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = SimBackend::new(2, OrganizationKind::Arbitrated);
        b.submit_batch(&descs);
        let frames = b.drain_egress();
        assert_eq!(frames.len(), 2);
        for (i, per_egress) in frames.iter().enumerate() {
            assert_eq!(per_egress.len(), descs.len());
            for (d, f) in descs.iter().zip(per_egress) {
                assert_eq!(*f, expected_frame(*d, i));
            }
        }
        assert_eq!(b.lost_updates(), 0);
        assert!(b.metrics().sim_cycles > 0);
    }

    #[test]
    fn optimized_sim_backend_matches_the_oracle() {
        let w = Workload::generate(0xBEEF, 30, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = SimBackend::with_opt(2, OrganizationKind::Arbitrated, OptLevel::O1);
        b.submit_batch(&descs);
        let frames = b.drain_egress();
        for (i, per_egress) in frames.iter().enumerate() {
            assert_eq!(per_egress.len(), descs.len());
            for (d, f) in descs.iter().zip(per_egress) {
                assert_eq!(*f, expected_frame(*d, i));
            }
        }
        assert_eq!(b.lost_updates(), 0);
    }

    #[test]
    fn multiple_submits_accumulate_until_one_drain() {
        let w = Workload::generate(3, 20, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = SimBackend::new(2, OrganizationKind::EventDriven);
        b.submit_batch(&descs[..8]);
        b.submit_batch(&descs[8..]);
        let frames = b.drain_egress();
        for per_egress in frames {
            assert_eq!(per_egress.len(), 20, "both submits drained together");
        }
        // Drained: the next round starts from an empty egress buffer.
        b.submit_batch(&descs[..4]);
        assert_eq!(b.drain_egress()[0].len(), 4);
        assert_eq!(b.metrics().descriptors, 24);
    }
}
