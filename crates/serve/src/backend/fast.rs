//! The compiled fast path: the forwarding pipeline executed functionally,
//! descriptor in, frames out — no cycle-accurate machinery.
//!
//! [`FastBackend`] is [`crate::pipeline::PipelineModel`] (the per-packet
//! verify oracle, byte-matched to the simulator's egress under both
//! memory organizations) promoted into a batch execution engine: the
//! `g()` mix is pre-seeded at construction, per-egress output buffers are
//! reused across batches, and a whole batch runs as a tight loop over
//! [`memsync_synth::eval::call_function_seeded`]. Because execution is a
//! pure function of each descriptor there is no shared guarded state to
//! overwrite — the backend is paced *by construction* and
//! `lost_updates()` is structurally 0.

use super::{BackendKind, BackendMetrics, ForwardingBackend};
use crate::pipeline::PipelineModel;

/// Functional batch execution of the compiled forwarding pipeline.
#[derive(Debug)]
pub struct FastBackend {
    model: PipelineModel,
    /// Accumulated frames, one buffer per egress consumer.
    buffers: Vec<Vec<u32>>,
    descriptors: u64,
    frames: u64,
}

impl FastBackend {
    /// An engine emitting frames for `egress` consumers.
    pub fn new(egress: usize) -> FastBackend {
        FastBackend {
            model: PipelineModel::new(),
            buffers: vec![Vec::new(); egress],
            descriptors: 0,
            frames: 0,
        }
    }
}

impl ForwardingBackend for FastBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fast
    }

    fn submit_batch(&mut self, descriptors: &[u32]) {
        for buf in &mut self.buffers {
            buf.reserve(descriptors.len());
        }
        // Descriptor-outer so the rx/lkp/fwd carrier is computed once per
        // packet and only the cheap per-egress scramble runs per consumer.
        for &d in descriptors {
            let carrier = self.model.carrier(d);
            for (i, buf) in self.buffers.iter_mut().enumerate() {
                buf.push(self.model.scramble(carrier, i));
            }
        }
        self.descriptors += descriptors.len() as u64;
        // Every descriptor filled one lane per egress consumer.
        self.frames += (descriptors.len() * self.buffers.len()) as u64;
    }

    fn drain_egress(&mut self) -> Vec<Vec<u32>> {
        self.buffers.iter_mut().map(std::mem::take).collect()
    }

    fn lost_updates(&self) -> u64 {
        0
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            sim_cycles: 0,
            descriptors: self.descriptors,
            frames: self.frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::expected_frame;
    use memsync_netapp::Workload;

    #[test]
    fn fast_backend_matches_the_per_packet_oracle() {
        let w = Workload::generate(21, 64, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = FastBackend::new(3);
        b.submit_batch(&descs[..40]);
        b.submit_batch(&descs[40..]);
        let frames = b.drain_egress();
        assert_eq!(frames.len(), 3);
        for (i, per_egress) in frames.iter().enumerate() {
            assert_eq!(per_egress.len(), descs.len());
            for (d, f) in descs.iter().zip(per_egress) {
                assert_eq!(*f, expected_frame(*d, i));
            }
        }
        assert_eq!(b.metrics().descriptors, 64);
        // Drain resets the buffers; nothing lingers into the next batch.
        b.submit_batch(&descs[..2]);
        assert_eq!(b.drain_egress()[0].len(), 2);
    }

    #[test]
    fn ttl_expired_descriptors_flow_through_with_the_drop_marker() {
        let mut w = Workload::generate(5, 4, 16);
        w.packets[1].ttl = 1;
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = FastBackend::new(1);
        b.submit_batch(&descs);
        let frames = b.drain_egress();
        assert_eq!(frames[0].len(), 4, "drops still emit a frame");
        assert_eq!(frames[0][1], expected_frame(descs[1], 0));
    }
}
