//! The compiled fast path: the forwarding pipeline executed functionally,
//! descriptor in, frames out — no cycle-accurate machinery.
//!
//! [`FastBackend`] runs [`crate::pipeline::PipelineModel`]'s batch
//! kernels: one structure-of-arrays pass computes every carrier for the
//! submitted batch ([`PipelineModel::carrier_batch`]), then one pass per
//! egress consumer scrambles the carriers straight into that consumer's
//! arena lane ([`PipelineModel::scramble_batch`]). The lanes double as
//! the zero-copy egress buffers: [`ForwardingBackend::drain_egress`]
//! hands them out as a borrowed view and the next submit recycles their
//! storage, so the steady state allocates nothing (pinned by
//! `tests/fast_zero_alloc.rs`). Because execution is a pure function of
//! each descriptor there is no shared guarded state to overwrite — the
//! backend is paced *by construction* and `lost_updates()` is
//! structurally 0.
//!
//! [`FastBackend::scalar`] keeps the old descriptor-at-a-time loop
//! (scalar `carrier()`/`scramble()` per packet) selectable as the
//! measurable baseline the `batch_over_scalar` benchmark field compares
//! against; both modes are byte-identical by the pipeline pin tests.
//!
//! [`PipelineModel::carrier_batch`]: crate::pipeline::PipelineModel::carrier_batch
//! [`PipelineModel::scramble_batch`]: crate::pipeline::PipelineModel::scramble_batch

use super::{BackendKind, BackendMetrics, ForwardingBackend};
use crate::pipeline::PipelineModel;

/// Lane-parallel batch execution of the compiled forwarding pipeline.
#[derive(Debug)]
pub struct FastBackend {
    model: PipelineModel,
    /// Arena frame buffers, one lane per egress consumer. Accumulate
    /// across submits; recycled (capacity kept) on the first submit after
    /// a drain.
    lanes: Vec<Vec<u32>>,
    /// Per-batch carrier scratch shared by every egress pass.
    carriers: Vec<u32>,
    /// Set by `drain_egress`; the next submit clears the consumed lanes.
    drained: bool,
    /// Run the descriptor-at-a-time scalar loop instead of the batch
    /// kernels (benchmark baseline).
    scalar: bool,
    descriptors: u64,
    frames: u64,
}

impl FastBackend {
    /// A batch engine emitting frames for `egress` consumers.
    pub fn new(egress: usize) -> FastBackend {
        FastBackend {
            model: PipelineModel::new(),
            lanes: vec![Vec::new(); egress],
            carriers: Vec::new(),
            drained: false,
            scalar: false,
            descriptors: 0,
            frames: 0,
        }
    }

    /// The same engine forced onto the scalar per-descriptor path — the
    /// baseline the batch kernels are benchmarked against
    /// (`batch_over_scalar` in `BENCH_serve.json`).
    pub fn scalar(egress: usize) -> FastBackend {
        FastBackend {
            scalar: true,
            ..FastBackend::new(egress)
        }
    }

    /// Recycles lanes consumed by the previous drain.
    fn recycle(&mut self) {
        if self.drained {
            for lane in &mut self.lanes {
                lane.clear();
            }
            self.drained = false;
        }
    }
}

impl ForwardingBackend for FastBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fast
    }

    fn submit_batch(&mut self, descriptors: &[u32]) {
        self.recycle();
        let n = descriptors.len();
        if self.scalar {
            // Descriptor-outer baseline: carrier once per packet, scalar
            // scramble per consumer.
            for &d in descriptors {
                let carrier = self.model.carrier(d);
                for (i, lane) in self.lanes.iter_mut().enumerate() {
                    lane.push(self.model.scramble(carrier, i));
                }
            }
        } else {
            // Structure-of-arrays: one branch-free pass fills the carrier
            // scratch, then one pass per egress consumer writes frames in
            // place into that consumer's lane.
            self.carriers.clear();
            self.carriers.resize(n, 0);
            self.model.carrier_batch(descriptors, &mut self.carriers);
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let start = lane.len();
                lane.resize(start + n, 0);
                self.model
                    .scramble_batch(&self.carriers, i, &mut lane[start..]);
            }
        }
        self.descriptors += n as u64;
        // Every descriptor filled one slot per egress lane.
        self.frames += (n * self.lanes.len()) as u64;
    }

    fn drain_egress(&mut self) -> &[Vec<u32>] {
        self.drained = true;
        &self.lanes
    }

    fn lost_updates(&self) -> u64 {
        0
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            sim_cycles: 0,
            descriptors: self.descriptors,
            frames: self.frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::expected_frame;
    use memsync_netapp::Workload;

    #[test]
    fn fast_backend_matches_the_per_packet_oracle() {
        let w = Workload::generate(21, 64, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = FastBackend::new(3);
        b.submit_batch(&descs[..40]);
        b.submit_batch(&descs[40..]);
        let frames = b.drain_egress();
        assert_eq!(frames.len(), 3);
        for (i, per_egress) in frames.iter().enumerate() {
            assert_eq!(per_egress.len(), descs.len());
            for (d, f) in descs.iter().zip(per_egress) {
                assert_eq!(*f, expected_frame(*d, i));
            }
        }
        assert_eq!(b.metrics().descriptors, 64);
        // The drained lanes are recycled; nothing lingers into the next
        // batch.
        b.submit_batch(&descs[..2]);
        assert_eq!(b.drain_egress()[0].len(), 2);
    }

    #[test]
    fn scalar_mode_is_byte_identical_to_batch_mode() {
        let w = Workload::generate(77, 200, 16);
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut batch = FastBackend::new(4);
        let mut scalar = FastBackend::scalar(4);
        for chunk in descs.chunks(48) {
            batch.submit_batch(chunk);
            scalar.submit_batch(chunk);
        }
        assert_eq!(batch.metrics(), scalar.metrics());
        assert_eq!(batch.drain_egress(), scalar.drain_egress());
    }

    #[test]
    fn drain_view_is_stable_until_the_next_submit() {
        let descs = [0xc0a8_0140u32, 0x0a0b_0c02, 0x0000_0001];
        let mut b = FastBackend::new(2);
        b.submit_batch(&descs);
        let first: Vec<Vec<u32>> = b.drain_egress().to_vec();
        // A second drain with no intervening submit sees the same frames.
        assert_eq!(b.drain_egress(), &first[..]);
        // The next submit recycles the storage for the new batch only.
        b.submit_batch(&descs[..1]);
        let second = b.drain_egress();
        assert_eq!(second[0].len(), 1);
        assert_eq!(second[0][0], first[0][0]);
    }

    #[test]
    fn ttl_expired_descriptors_flow_through_with_the_drop_marker() {
        let mut w = Workload::generate(5, 4, 16);
        w.packets[1].ttl = 1;
        let descs: Vec<u32> = w.packets.iter().map(|p| p.descriptor()).collect();
        let mut b = FastBackend::new(1);
        b.submit_batch(&descs);
        let frames = b.drain_egress();
        assert_eq!(frames[0].len(), 4, "drops still emit a frame");
        assert_eq!(frames[0][1], expected_frame(descs[1], 0));
    }
}
