//! A thin blocking client for the frame protocol.
//!
//! Used by `loadgen`, the loopback e2e tests, and the `perf_serve` bench.
//! Connections are built through [`Client::builder`]: the builder carries
//! socket deadlines and the busy-retry budget, and `connect` performs the
//! protocol-v2 `Hello` negotiation before handing the connection over —
//! so a [`Client`] in your hands has always already agreed on a version
//! and knows the server's capabilities ([`Client::server`]).
//!
//! Failures are typed ([`ClientError`]): protocol violations, server-side
//! errors, exhausted backpressure retries, and locally validated misuse
//! (e.g. a [`Client::kill_shard`] index outside the negotiated shard
//! count) are distinct variants, not stringly `io::Error`s.

use crate::frame::{
    encode_submit_into, read_frame, write_frame, Request, Response, ServerHello, SubmitOptions,
    CAP_CONTROL, CAP_TRACING, PROTOCOL_MIN_SUPPORTED, PROTOCOL_VERSION,
};
use crate::snapshot::StatsSnapshot;
use memsync_netapp::fib::Route;
use memsync_netapp::Ipv4Packet;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything that can go wrong between a client and a server.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, deadline expiry).
    Io(io::Error),
    /// The peer violated the frame protocol: garbage bytes, an
    /// unexpected response type, or a close mid-response.
    Protocol(String),
    /// The server refused the request with a typed error frame.
    Server(String),
    /// Version negotiation failed — the peer does not speak a protocol
    /// version in our supported range (e.g. a pre-`Hello` v1 server).
    Unsupported(String),
    /// The server answered `Busy` more times than the configured retry
    /// budget allows; nothing from the last attempt was enqueued.
    Busy {
        /// First full shard named by the final `Busy` response.
        shard: u16,
        /// Attempts made (initial + retries).
        attempts: u32,
    },
    /// Local validation: the shard index does not exist on the server
    /// this connection negotiated with. Nothing was sent.
    ShardOutOfRange {
        /// The requested shard index.
        shard: u16,
        /// The negotiated shard count ([`ServerHello::shards`]).
        shards: u16,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unsupported(m) => write!(f, "version negotiation failed: {m}"),
            ClientError::Busy { shard, attempts } => write!(
                f,
                "server busy (shard {shard} full) after {attempts} attempts"
            ),
            ClientError::ShardOutOfRange { shard, shards } => write!(
                f,
                "shard {shard} out of range: the server has {shards} shards"
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Configures and opens [`Client`] connections.
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    retries: u32,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            read_timeout: None,
            write_timeout: None,
            retries: 32,
        }
    }
}

impl ClientBuilder {
    /// Socket read deadline (default: none — block forever).
    #[must_use]
    pub fn read_timeout(mut self, t: Duration) -> ClientBuilder {
        self.read_timeout = Some(t);
        self
    }

    /// Socket write deadline (default: none).
    #[must_use]
    pub fn write_timeout(mut self, t: Duration) -> ClientBuilder {
        self.write_timeout = Some(t);
        self
    }

    /// How many `Busy` responses [`Client::submit`] absorbs (with bounded
    /// exponential backoff) before giving up. Default 32.
    #[must_use]
    pub fn retries(mut self, n: u32) -> ClientBuilder {
        self.retries = n;
        self
    }

    /// Connects and negotiates the protocol version.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failures; [`ClientError::Unsupported`]
    /// when the peer refuses our version range or does not speak `Hello`
    /// at all (a v1 server answers the unknown request with an error
    /// frame, which maps here); [`ClientError::Protocol`] on garbage.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            encode_buf: Vec::new(),
            hello: ServerHello {
                version: 0,
                capabilities: 0,
                backend: crate::backend::BackendKind::Sim,
                shards: 0,
                egress: 0,
                routes: 0,
            },
            retries: self.retries,
        };
        match client.roundtrip(&Request::Hello {
            min_version: PROTOCOL_MIN_SUPPORTED,
            max_version: PROTOCOL_VERSION,
        })? {
            Response::Hello(h) => {
                if h.version < PROTOCOL_MIN_SUPPORTED || h.version > PROTOCOL_VERSION {
                    return Err(ClientError::Unsupported(format!(
                        "server settled on protocol v{} but this client speaks \
                         v{PROTOCOL_MIN_SUPPORTED}..=v{PROTOCOL_VERSION}",
                        h.version
                    )));
                }
                client.hello = h;
                Ok(client)
            }
            // A v1 server does not know REQ_HELLO and answers with its
            // (v1-decodable) error frame; a v2 server outside our range
            // answers the same way. Both are "we could not agree".
            Response::Error(e) => Err(ClientError::Unsupported(e)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to hello: {other:?}"
            ))),
        }
    }
}

/// One blocking, version-negotiated connection to a memsync-serve
/// instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Reusable submit encode scratch: a stream of same-size batches
    /// serializes with zero allocations per submit.
    encode_buf: Vec<u8>,
    hello: ServerHello,
    retries: u32,
}

/// The typed outcome of a route mutation ([`Client::route_add`],
/// [`Client::route_withdraw`], [`Client::swap_default`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteUpdate {
    /// Table generation that carries the mutation. The response arrives
    /// only after every shard acknowledged this generation's drain
    /// barrier, so traffic submitted afterwards classifies against the
    /// new table.
    pub generation: u64,
    /// Routes in the table after the mutation.
    pub routes: u32,
    /// Entries of the request that actually changed the table
    /// (withdrawing an absent prefix does not count).
    pub applied: u32,
}

/// Totals reported back for a submitted batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Packets the service forwarded.
    pub forwarded: u32,
    /// Packets the service dropped (TTL expiry or FIB miss).
    pub dropped: u32,
    /// Verify-mode frame mismatches (should always be zero).
    pub mismatches: u32,
    /// `Busy` responses absorbed before the batch was accepted.
    pub busy_retries: u32,
}

impl Client {
    /// Starts building a connection.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with default options (no deadlines, 32 busy retries).
    ///
    /// # Errors
    ///
    /// See [`ClientBuilder::connect`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::builder().connect(addr)
    }

    /// What the server declared at connect time: settled protocol
    /// version, backend capability bits, the serving backend, and the
    /// shard/egress/route geometry.
    pub fn server(&self) -> &ServerHello {
        &self.hello
    }

    /// Whether the server advertised the request-tracing capability
    /// (span-tagged submits, stats streaming) at connect time.
    pub fn supports_tracing(&self) -> bool {
        self.hello.capabilities & CAP_TRACING != 0
    }

    /// Whether this connection can mutate routes at runtime: the server
    /// advertised [`CAP_CONTROL`] *and* the handshake settled protocol
    /// v3 or newer (a capable server still refuses control frames on a
    /// connection that negotiated down to v2).
    pub fn supports_control(&self) -> bool {
        self.hello.capabilities & CAP_CONTROL != 0 && self.hello.version >= 3
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ClientError::Protocol`] when the server closes
    /// mid-response or replies with garbage.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader)? {
            Some(payload) => {
                Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            None => Err(ClientError::Protocol(
                "server closed before responding".into(),
            )),
        }
    }

    /// Submits one batch without retrying `Busy` — the raw response, for
    /// open-loop callers that implement their own pacing.
    ///
    /// # Errors
    ///
    /// I/O failures or a garbled response; [`ClientError::Unsupported`]
    /// locally (nothing sent) when the options carry a span id but the
    /// server never advertised the tracing capability — an older server
    /// would reject the unknown submit flag byte.
    pub fn submit_once(
        &mut self,
        packets: &[Ipv4Packet],
        options: SubmitOptions,
    ) -> Result<Response, ClientError> {
        self.submit_send(packets, options)?;
        self.submit_recv()
    }

    /// Sends one submit frame without waiting for its response — the
    /// pipelined half of [`Client::submit_once`]. A fan-in driver (one
    /// thread multiplexing many connections, like `loadgen --ramp`) sends
    /// on every connection first and then collects the responses with
    /// [`Client::submit_recv`], keeping all connections in flight at once
    /// instead of serializing round trips. Responses arrive in send order
    /// on each connection; interleaving other requests between a
    /// `submit_send` and its `submit_recv` would desync the pairing.
    ///
    /// # Errors
    ///
    /// I/O failures; [`ClientError::Unsupported`] locally (nothing sent)
    /// for span-tagged submits against a server without the tracing
    /// capability.
    pub fn submit_send(
        &mut self,
        packets: &[Ipv4Packet],
        options: SubmitOptions,
    ) -> Result<(), ClientError> {
        if options.span_id.is_some() && !self.supports_tracing() {
            return Err(ClientError::Unsupported(
                "server does not advertise the tracing capability; \
                 span-tagged submits would not decode there"
                    .into(),
            ));
        }
        // Encode straight from the caller's slice into the reusable
        // scratch — no Vec<Ipv4Packet> clone, no per-submit allocation.
        encode_submit_into(packets, options, &mut self.encode_buf);
        write_frame(&mut self.writer, &self.encode_buf)?;
        Ok(())
    }

    /// Receives the response to an earlier [`Client::submit_send`].
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ClientError::Protocol`] when the server closes
    /// mid-response or replies with garbage.
    pub fn submit_recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(payload) => {
                Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            None => Err(ClientError::Protocol(
                "server closed before responding".into(),
            )),
        }
    }

    /// Submits a batch, absorbing `Busy` with bounded exponential backoff
    /// (1ms doubling to 64ms) up to the builder-configured retry budget.
    ///
    /// # Errors
    ///
    /// I/O failures, [`ClientError::Server`] on a server error frame, or
    /// [`ClientError::Busy`] once retries are exhausted.
    pub fn submit(
        &mut self,
        packets: &[Ipv4Packet],
        options: SubmitOptions,
    ) -> Result<BatchResult, ClientError> {
        let mut backoff = Duration::from_millis(1);
        let mut busy_retries = 0u32;
        loop {
            match self.submit_once(packets, options)? {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    return Ok(BatchResult {
                        forwarded,
                        dropped,
                        mismatches,
                        busy_retries,
                    })
                }
                Response::Busy(shard) => {
                    if busy_retries >= self.retries {
                        return Err(ClientError::Busy {
                            shard,
                            attempts: busy_retries + 1,
                        });
                    }
                    busy_retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(64));
                }
                Response::Error(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response to submit: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches and decodes the stats frame.
    ///
    /// # Errors
    ///
    /// I/O failures, a non-stats response, or a stats document that does
    /// not decode (both map to [`ClientError::Protocol`]).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let doc = self.stats_raw()?;
        StatsSnapshot::decode(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Subscribes to the live stats stream: the server pushes a snapshot
    /// immediately and then every `interval` until the callback returns
    /// `false`. Returns the final snapshot (a fresh non-push stats
    /// response marking the stream boundary).
    ///
    /// The stop choreography rides the protocol's design: *any* client
    /// frame ends a stream server-side, so the client sends a plain
    /// `Stats` request, discards pushes still in flight, and the typed
    /// `Stats` (not `StatsPush`) response is the unambiguous end marker.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unsupported`] locally when the server never
    /// advertised the tracing capability; I/O failures; a push document
    /// that does not decode or an unexpected frame
    /// ([`ClientError::Protocol`]); [`ClientError::Server`] if the server
    /// refuses the subscription (e.g. a zero interval).
    pub fn stats_stream(
        &mut self,
        interval: Duration,
        mut on_push: impl FnMut(StatsSnapshot) -> bool,
    ) -> Result<StatsSnapshot, ClientError> {
        if !self.supports_tracing() {
            return Err(ClientError::Unsupported(
                "server does not advertise the tracing capability (stats streaming)".into(),
            ));
        }
        let interval_ms = u32::try_from(interval.as_millis()).unwrap_or(u32::MAX);
        write_frame(
            &mut self.writer,
            &Request::StatsStream { interval_ms }.encode(),
        )?;
        let mut stopping = false;
        loop {
            let payload = read_frame(&mut self.reader)?
                .ok_or_else(|| ClientError::Protocol("server closed mid-stream".into()))?;
            let rsp =
                Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
            match rsp {
                Response::StatsPush(doc) => {
                    if stopping {
                        continue; // a push that was already in flight
                    }
                    let snap = StatsSnapshot::decode(&doc)
                        .map_err(|e| ClientError::Protocol(e.to_string()))?;
                    if !on_push(snap) {
                        write_frame(&mut self.writer, &Request::Stats.encode())?;
                        stopping = true;
                    }
                }
                Response::Stats(doc) if stopping => {
                    return StatsSnapshot::decode(&doc)
                        .map_err(|e| ClientError::Protocol(e.to_string()));
                }
                Response::Error(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response in stats stream: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the raw stats JSON document (for humans and log files;
    /// typed callers want [`Client::stats`]).
    ///
    /// # Errors
    ///
    /// I/O failures or a non-stats response.
    pub fn stats_raw(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(doc) => Ok(doc),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Drains the service: refuses new submits, waits until every shard
    /// is quiescent.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ClientError::Server`] when the server reports a
    /// drain timeout.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Drain)? {
            Response::Drained => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to drain: {other:?}"
            ))),
        }
    }

    /// Drains and shuts the service down.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpected response.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }

    /// Sends one control frame and decodes the `RouteUpdated` response,
    /// refusing locally (nothing sent) when the connection cannot carry
    /// control frames.
    fn control_roundtrip(&mut self, req: &Request) -> Result<RouteUpdate, ClientError> {
        if !self.supports_control() {
            return Err(ClientError::Unsupported(format!(
                "server does not support runtime route control on this \
                 connection (settled v{}, capabilities {:#04x})",
                self.hello.version, self.hello.capabilities
            )));
        }
        match self.roundtrip(req)? {
            Response::RouteUpdated {
                generation,
                routes,
                applied,
            } => Ok(RouteUpdate {
                generation,
                routes,
                applied,
            }),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to {}: {other:?}",
                req.name()
            ))),
        }
    }

    /// Inserts (or re-targets) a batch of routes in the live FIB. The
    /// call returns once the new table generation is visible to every
    /// shard (the server runs its drain barrier before responding).
    ///
    /// # Errors
    ///
    /// [`ClientError::Unsupported`] locally when the connection lacks
    /// the control capability or settled below v3; I/O failures;
    /// [`ClientError::Server`] on malformed routes.
    pub fn route_add(&mut self, routes: &[Route]) -> Result<RouteUpdate, ClientError> {
        self.control_roundtrip(&Request::RouteAdd(routes.to_vec()))
    }

    /// Withdraws a batch of `(prefix, len)` entries from the live FIB.
    /// Absent prefixes are counted out of [`RouteUpdate::applied`]
    /// rather than erroring, so withdraw is idempotent.
    ///
    /// # Errors
    ///
    /// See [`Client::route_add`].
    pub fn route_withdraw(&mut self, prefixes: &[(u32, u8)]) -> Result<RouteUpdate, ClientError> {
        self.control_roundtrip(&Request::RouteWithdraw(prefixes.to_vec()))
    }

    /// Re-targets the default route (`0.0.0.0/0`) in one frame.
    ///
    /// # Errors
    ///
    /// See [`Client::route_add`].
    pub fn swap_default(&mut self, next_hop: u32) -> Result<RouteUpdate, ClientError> {
        self.control_roundtrip(&Request::SwapDefault { next_hop })
    }

    /// Fault injection: asks the service to crash shard `shard` on its
    /// next activation (the supervisor restarts it). The index is
    /// validated against the negotiated [`ServerHello::shards`] before
    /// anything hits the wire.
    ///
    /// # Errors
    ///
    /// [`ClientError::ShardOutOfRange`] locally for a bad index; I/O
    /// failures or [`ClientError::Server`] otherwise.
    pub fn kill_shard(&mut self, shard: u16) -> Result<(), ClientError> {
        if shard >= self.hello.shards {
            return Err(ClientError::ShardOutOfRange {
                shard,
                shards: self.hello.shards,
            });
        }
        match self.roundtrip(&Request::Kill(shard))? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to kill: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_errors_render_their_context() {
        let e = ClientError::ShardOutOfRange {
            shard: 9,
            shards: 4,
        };
        assert_eq!(
            e.to_string(),
            "shard 9 out of range: the server has 4 shards"
        );
        let e = ClientError::Busy {
            shard: 2,
            attempts: 5,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("5 attempts"));
        let e: ClientError = io::Error::new(io::ErrorKind::TimedOut, "deadline").into();
        assert!(matches!(e, ClientError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
