//! A thin blocking client for the frame protocol.
//!
//! Used by `loadgen`, the loopback e2e test, and the `perf_serve` bench —
//! one connection, synchronous request/response, [`Client::submit_retry`]
//! layering a bounded exponential backoff over `Busy` responses so
//! closed-loop callers observe backpressure without losing packets.

use crate::frame::{read_frame, write_frame, Request, Response};
use memsync_netapp::Ipv4Packet;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One blocking connection to a memsync-serve instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Totals reported back for a submitted batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Packets the service forwarded.
    pub forwarded: u32,
    /// Packets the service dropped (TTL expiry or FIB miss).
    pub dropped: u32,
    /// Verify-mode frame mismatches (should always be zero).
    pub mismatches: u32,
    /// `Busy` responses absorbed before the batch was accepted.
    pub busy_retries: u32,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` when the server closes mid-response
    /// or replies with garbage.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Response::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            )),
        }
    }

    /// Submits one batch without retrying `Busy`.
    ///
    /// # Errors
    ///
    /// I/O failures; `Other` on a server-side `Error` response.
    pub fn submit(&mut self, packets: &[Ipv4Packet], verify: bool) -> io::Result<Response> {
        self.roundtrip(&Request::Submit {
            packets: packets.to_vec(),
            verify,
        })
    }

    /// Submits a batch, absorbing `Busy` with bounded exponential backoff
    /// (1ms doubling to 64ms, up to `max_retries` attempts).
    ///
    /// # Errors
    ///
    /// I/O failures, a server `Error` response, or exhausted retries
    /// (`WouldBlock`).
    pub fn submit_retry(
        &mut self,
        packets: &[Ipv4Packet],
        verify: bool,
        max_retries: u32,
    ) -> io::Result<BatchResult> {
        let mut backoff = Duration::from_millis(1);
        let mut busy_retries = 0u32;
        loop {
            match self.submit(packets, verify)? {
                Response::Batch {
                    forwarded,
                    dropped,
                    mismatches,
                } => {
                    return Ok(BatchResult {
                        forwarded,
                        dropped,
                        mismatches,
                        busy_retries,
                    })
                }
                Response::Busy(_) => {
                    if busy_retries >= max_retries {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "server busy: retries exhausted",
                        ));
                    }
                    busy_retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(64));
                }
                Response::Error(e) => return Err(io::Error::other(e)),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response to submit: {other:?}"),
                    ))
                }
            }
        }
    }

    /// Fetches the stats frame (a JSON document).
    ///
    /// # Errors
    ///
    /// I/O failures or a non-stats response.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(doc) => Ok(doc),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to stats: {other:?}"),
            )),
        }
    }

    /// Drains the service: refuses new submits, waits until every shard
    /// is quiescent.
    ///
    /// # Errors
    ///
    /// I/O failures, or `Other` when the server reports a drain timeout.
    pub fn drain(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Drain)? {
            Response::Drained => Ok(()),
            Response::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to drain: {other:?}"),
            )),
        }
    }

    /// Drains and shuts the service down.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpected response.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to shutdown: {other:?}"),
            )),
        }
    }

    /// Fault injection: asks the service to crash shard `shard` on its
    /// next activation (the supervisor restarts it).
    ///
    /// # Errors
    ///
    /// I/O failures, or `Other` when the shard index is out of range.
    pub fn kill_shard(&mut self, shard: u16) -> io::Result<()> {
        match self.roundtrip(&Request::Kill(shard))? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to kill: {other:?}"),
            )),
        }
    }
}
