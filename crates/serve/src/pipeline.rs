//! Software model of the compiled forwarding pipeline — the oracle behind
//! the per-packet `verify` mode.
//!
//! A shard's simulator executes the hic application
//! [`memsync_netapp::forwarding::app_source`] cycle-accurately: the `rx`
//! thread parses the packet descriptor and decrements the TTL, `lkp` runs
//! the two-level table walk, `fwd` folds the checksum arithmetic, and each
//! egress consumer `e{i}` scrambles the output word with a CRC before
//! `send`ing it. This module re-computes the *expected* egress frames in
//! plain Rust (32-bit datapath semantics, same `g()` primitive via
//! [`memsync_synth::eval::call_function`]) so a shard can cross-check the
//! hardware's output word for word, and classifies each packet with the
//! same FIB lookup [`memsync_netapp::Workload::reference_forward`] uses.

use memsync_netapp::{Fib, Ipv4Packet};
use memsync_synth::eval::{call_function_seeded, name_seed};

/// What `rx` hands to `lkp` for a given input descriptor: the dst prefix
/// shifted back into place with a decremented TTL, or 0 when the TTL is
/// spent (the application's in-band drop marker). Every packet — dropped
/// or not — flows through the whole pipeline and emits one frame per
/// egress consumer; drops are distinguishable by carrying the 0 key.
pub fn expected_descriptor(desc: u32) -> u32 {
    let dstp = (desc >> 8) & 0x00ff_ffff;
    let ttl = desc & 0xff;
    if ttl > 1 {
        (dstp << 8) | (ttl - 1)
    } else {
        0
    }
}

/// The forwarding pipeline executed functionally: rx parse, lkp table
/// walk, fwd checksum fold, and the per-egress CRC scramble, all on the
/// 32-bit datapath the compiled threads use. Construction pre-hashes the
/// `g()` mix seed once, so [`PipelineModel::frame`] is cheap enough to be
/// a serving engine ([`crate::backend::FastBackend`]), not just a
/// verify-mode oracle.
#[derive(Debug, Clone, Copy)]
pub struct PipelineModel {
    g_seed: u64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::new()
    }
}

impl PipelineModel {
    /// A model with the `g()` seed precomputed.
    pub fn new() -> PipelineModel {
        PipelineModel {
            g_seed: name_seed("g"),
        }
    }

    /// The rx/lkp/fwd front of the pipeline: the output word `fwd` hands
    /// to *every* egress consumer for an input descriptor. The per-egress
    /// work ([`PipelineModel::scramble`]) only differs in the CRC seed, so
    /// batch engines compute the carrier once per descriptor and scramble
    /// it per consumer instead of re-walking the whole pipeline.
    pub fn carrier(&self, desc: u32) -> u32 {
        let key = expected_descriptor(desc);
        // lkp: node = tbl0[idx0] = 0 -> even -> hop = node >> 1 = 0.
        // (The lkp tables are BRAM-resident and never written, so the
        // table walk reads zeros — exactly what the simulated BRAMs
        // return.)
        let hop = 0u32;
        let route = (hop << 16) | (key & 0xffff);
        // fwd: TTL/checksum arithmetic.
        let rinfo = route;
        let hop = (rinfo >> 16) & 0xffff;
        let meta = rinfo & 0xffff;
        let mut sum = (meta & 0xff) + ((meta >> 8) & 0xff) + hop;
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        let csum = !sum & 0xffff;
        (hop << 20) | (csum << 4) | 5
    }

    /// The per-egress tail: `e{i}` sends `od ^ (g(od, 17 + i) << 1)`, all
    /// in the 32-bit domain, where `od` is the shared carrier word.
    pub fn scramble(&self, carrier: u32, egress_index: usize) -> u32 {
        let crc = call_function_seeded(self.g_seed, &[i64::from(carrier), 17 + egress_index as i64])
            as u32;
        carrier ^ (crc << 1)
    }

    /// The frame egress consumer `egress_index` must `send` for an input
    /// descriptor, replicating the compiled pipeline on the 32-bit
    /// datapath.
    pub fn frame(&self, desc: u32, egress_index: usize) -> u32 {
        self.scramble(self.carrier(desc), egress_index)
    }
}

/// One-shot convenience over [`PipelineModel::frame`] for the per-packet
/// verify path.
pub fn expected_frame(desc: u32, egress_index: usize) -> u32 {
    PipelineModel::new().frame(desc, egress_index)
}

/// Whether the reference data path forwards this packet: TTL survives the
/// decrement *and* the (decremented, checksum-fixed) packet's destination
/// resolves in the FIB — byte-for-byte the
/// [`memsync_netapp::Workload::reference_forward`] classification.
pub fn oracle_forwards(p: &Ipv4Packet, fib: &Fib) -> bool {
    let mut q = *p;
    q.forward() && fib.lookup(q.dst).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_core::{Compiler, OrganizationKind};
    use memsync_netapp::forwarding::app_source;
    use memsync_netapp::Workload;

    /// The load-bearing pin: the software model must match the
    /// cycle-accurate simulator's egress output frame for frame, under
    /// both memory organizations. Injection is paced — one descriptor in
    /// flight at a time — because guarded locations have *sampling*
    /// semantics: a producer that writes again before every consumer has
    /// read simply overwrites, exactly as the paper's dependency-guarded
    /// memory does. The serve shards pace the same way.
    #[test]
    fn model_matches_simulated_egress_frames() {
        let mut w = Workload::generate(0xBEEF, 24, 16);
        // Force TTL-expired packets into the mix: they flow through the
        // pipeline too, carrying the in-band drop marker.
        w.packets[3].ttl = 1;
        w.packets[7].ttl = 0;
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let egress = 2usize;
            let mut c = Compiler::new(app_source(egress));
            c.organization(kind).skip_validation();
            let compiled = c.compile().expect("forwarding app compiles");
            let mut sys = memsync_sim::System::new(&compiled);
            let ids: Vec<_> = (0..egress)
                .map(|i| sys.thread_id(&format!("e{i}")).expect("egress thread"))
                .collect();
            for (k, p) in w.packets.iter().enumerate() {
                sys.push_messages("rx", [i64::from(p.descriptor())]);
                assert!(
                    sys.run_until_sent(&ids, k + 1, 5_000),
                    "packet {k} stalled under {kind}"
                );
            }
            for (i, id) in ids.iter().enumerate() {
                let frames = sys.drain_sent(*id);
                assert_eq!(frames.len(), w.packets.len());
                for (p, frame) in w.packets.iter().zip(&frames) {
                    let want = i64::from(expected_frame(p.descriptor(), i));
                    assert_eq!(
                        *frame, want,
                        "egress e{i} diverged from the model under {kind} for {p:?}"
                    );
                }
            }
            assert_eq!(
                sys.lost_updates(),
                0,
                "paced injection must not overwrite unconsumed values under {kind}"
            );
        }
    }

    /// Batch-pushing the whole workload at once *loses* packets to
    /// overwrites — documenting why the shards pace injection.
    #[test]
    fn unpaced_injection_overwrites_and_loses_packets() {
        let w = Workload::generate(0xBEEF, 24, 16);
        let mut c = Compiler::new(app_source(2));
        c.organization(OrganizationKind::Arbitrated)
            .skip_validation();
        let compiled = c.compile().expect("forwarding app compiles");
        let mut sys = memsync_sim::System::new(&compiled);
        let e0 = sys.thread_id("e0").expect("egress thread");
        sys.push_messages("rx", w.descriptors());
        for _ in 0..200_000 {
            sys.step();
        }
        let got = sys.drain_sent(e0).len();
        assert!(
            got < w.packets.len(),
            "sampling semantics should lose unpaced packets (got {got})"
        );
        // The dynamic detector agrees: the runtime counter catches the
        // same bug class the static pass (`memsync-lint --unpaced`) flags.
        assert!(
            sys.lost_updates() > 0,
            "unpaced overwrites must be counted as lost updates"
        );
    }

    #[test]
    fn expected_descriptor_handles_ttl_edge() {
        // ttl 0 and 1 both drop; ttl 2 decrements.
        assert_eq!(expected_descriptor(0xc0a8_0100), 0);
        assert_eq!(expected_descriptor(0xc0a8_0101), 0);
        assert_eq!(expected_descriptor(0xc0a8_0102), 0xc0a8_0101);
    }

    #[test]
    fn oracle_matches_reference_forward_totals() {
        let w = Workload::generate(42, 300, 32);
        let (fwd, drop) = w.reference_forward();
        let model_fwd = w
            .packets
            .iter()
            .filter(|p| oracle_forwards(p, &w.fib))
            .count();
        assert_eq!(model_fwd, fwd);
        assert_eq!(w.packets.len() - model_fwd, drop);
    }
}
