//! Software model of the compiled forwarding pipeline — the oracle behind
//! the per-packet `verify` mode.
//!
//! A shard's simulator executes the hic application
//! [`memsync_netapp::forwarding::app_source`] cycle-accurately: the `rx`
//! thread parses the packet descriptor and decrements the TTL, `lkp` runs
//! the two-level table walk, `fwd` folds the checksum arithmetic, and each
//! egress consumer `e{i}` scrambles the output word with a CRC before
//! `send`ing it. This module re-computes the *expected* egress frames in
//! plain Rust (32-bit datapath semantics, same `g()` primitive via
//! [`memsync_synth::eval::call_function`]) so a shard can cross-check the
//! hardware's output word for word, and classifies each packet with the
//! same FIB lookup [`memsync_netapp::Workload::reference_forward`] uses.

use memsync_netapp::{Fib, Ipv4Packet};
use memsync_synth::eval::{call_function_seeded, name_seed};

/// What `rx` hands to `lkp` for a given input descriptor: the dst prefix
/// shifted back into place with a decremented TTL, or 0 when the TTL is
/// spent (the application's in-band drop marker). Every packet — dropped
/// or not — flows through the whole pipeline and emits one frame per
/// egress consumer; drops are distinguishable by carrying the 0 key.
pub fn expected_descriptor(desc: u32) -> u32 {
    let dstp = (desc >> 8) & 0x00ff_ffff;
    let ttl = desc & 0xff;
    if ttl > 1 {
        (dstp << 8) | (ttl - 1)
    } else {
        0
    }
}

/// The forwarding pipeline executed functionally: rx parse, lkp table
/// walk, fwd checksum fold, and the per-egress CRC scramble, all on the
/// 32-bit datapath the compiled threads use. Construction pre-hashes the
/// `g()` mix seed once, so [`PipelineModel::frame`] is cheap enough to be
/// a serving engine ([`crate::backend::FastBackend`]), not just a
/// verify-mode oracle.
#[derive(Debug, Clone, Copy)]
pub struct PipelineModel {
    g_seed: u64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::new()
    }
}

impl PipelineModel {
    /// A model with the `g()` seed precomputed.
    pub fn new() -> PipelineModel {
        PipelineModel {
            g_seed: name_seed("g"),
        }
    }

    /// The rx/lkp/fwd front of the pipeline: the output word `fwd` hands
    /// to *every* egress consumer for an input descriptor. The per-egress
    /// work ([`PipelineModel::scramble`]) only differs in the CRC seed, so
    /// batch engines compute the carrier once per descriptor and scramble
    /// it per consumer instead of re-walking the whole pipeline.
    pub fn carrier(&self, desc: u32) -> u32 {
        let key = expected_descriptor(desc);
        // lkp: node = tbl0[idx0] = 0 -> even -> hop = node >> 1 = 0.
        // (The lkp tables are BRAM-resident and never written, so the
        // table walk reads zeros — exactly what the simulated BRAMs
        // return.)
        let hop = 0u32;
        let route = (hop << 16) | (key & 0xffff);
        // fwd: TTL/checksum arithmetic.
        let rinfo = route;
        let hop = (rinfo >> 16) & 0xffff;
        let meta = rinfo & 0xffff;
        let mut sum = (meta & 0xff) + ((meta >> 8) & 0xff) + hop;
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        let csum = !sum & 0xffff;
        (hop << 20) | (csum << 4) | 5
    }

    /// The per-egress tail: `e{i}` sends `od ^ (g(od, 17 + i) << 1)`, all
    /// in the 32-bit domain, where `od` is the shared carrier word.
    pub fn scramble(&self, carrier: u32, egress_index: usize) -> u32 {
        let crc = call_function_seeded(self.g_seed, &[i64::from(carrier), 17 + egress_index as i64])
            as u32;
        carrier ^ (crc << 1)
    }

    /// The frame egress consumer `egress_index` must `send` for an input
    /// descriptor, replicating the compiled pipeline on the 32-bit
    /// datapath.
    pub fn frame(&self, desc: u32, egress_index: usize) -> u32 {
        self.scramble(self.carrier(desc), egress_index)
    }

    /// [`PipelineModel::carrier`] over a whole batch: one carrier per
    /// descriptor, written into `out`.
    ///
    /// The body is a branch-free rewrite of the scalar pipeline front
    /// (the TTL-expiry drop marker becomes a mask select) applied over
    /// [`BATCH_LANES`]-wide chunks with fixed trip counts, which is the
    /// structure-of-arrays shape LLVM autovectorizes. The scalar
    /// [`PipelineModel::carrier`] stays the oracle; byte-for-byte
    /// equality is pinned by `batch_kernels_match_scalar_byte_for_byte`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn carrier_batch(&self, descs: &[u32], out: &mut [u32]) {
        assert_eq!(descs.len(), out.len(), "one carrier per descriptor");
        let mut d_lanes = descs.chunks_exact(BATCH_LANES);
        let mut o_lanes = out.chunks_exact_mut(BATCH_LANES);
        for (d, o) in (&mut d_lanes).zip(&mut o_lanes) {
            for (desc, slot) in d.iter().zip(o.iter_mut()) {
                *slot = carrier_lane(*desc);
            }
        }
        for (desc, slot) in d_lanes.remainder().iter().zip(o_lanes.into_remainder()) {
            *slot = carrier_lane(*desc);
        }
    }

    /// [`PipelineModel::scramble`] over a whole batch of carriers for one
    /// egress consumer, written into `out`. Branch-free lanes like
    /// [`PipelineModel::carrier_batch`]; the `g()` fold is inlined with
    /// the egress-dependent second argument (and its rotate) hoisted out
    /// of the loop.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn scramble_batch(&self, carriers: &[u32], egress_index: usize, out: &mut [u32]) {
        assert_eq!(carriers.len(), out.len(), "one frame per carrier");
        let seed = self.g_seed as u32;
        let arg2 = (17i64 + egress_index as i64) as u32;
        let arg2_rot = arg2.rotate_left(13);
        let mut c_lanes = carriers.chunks_exact(BATCH_LANES);
        let mut o_lanes = out.chunks_exact_mut(BATCH_LANES);
        for (c, o) in (&mut c_lanes).zip(&mut o_lanes) {
            for (carrier, slot) in c.iter().zip(o.iter_mut()) {
                *slot = scramble_lane(seed, *carrier, arg2, arg2_rot);
            }
        }
        for (carrier, slot) in c_lanes.remainder().iter().zip(o_lanes.into_remainder()) {
            *slot = scramble_lane(seed, *carrier, arg2, arg2_rot);
        }
    }
}

/// Lane width of the batch kernels: chunks of this many descriptors run
/// as fixed-trip-count inner loops (16 × u32 fills a 512-bit vector; on
/// 256-bit targets LLVM splits each lane into two registers).
pub const BATCH_LANES: usize = 16;

/// Branch-free [`PipelineModel::carrier`]: `expected_descriptor`'s
/// TTL-expiry branch becomes an all-ones/all-zeros mask select, and the
/// zero `hop` from the BRAM-resident lkp tables is folded away.
#[inline]
fn carrier_lane(desc: u32) -> u32 {
    let dstp = (desc >> 8) & 0x00ff_ffff;
    let ttl = desc & 0xff;
    // Keep the key iff ttl > 1, else the in-band drop marker 0.
    let live = 0u32.wrapping_sub(u32::from(ttl > 1));
    let key = ((dstp << 8) | (ttl.wrapping_sub(1) & 0xff)) & live;
    // lkp reads zeroed BRAMs (hop = 0), so only the meta bytes feed the
    // checksum fold; the fold rounds stay for fidelity with the scalar
    // path even though two byte adds can never carry past 16 bits.
    let meta = key & 0xffff;
    let mut sum = (meta & 0xff) + ((meta >> 8) & 0xff);
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    let csum = !sum & 0xffff;
    (csum << 4) | 5
}

/// One lane of the inlined `g()` fold + XOR scramble
/// (`carrier ^ (g(carrier, 17 + i) << 1)` in the 32-bit domain).
#[inline]
fn scramble_lane(seed: u32, carrier: u32, arg2: u32, arg2_rot: u32) -> u32 {
    let mut acc = seed;
    acc = acc.rotate_left(5) ^ carrier;
    acc = acc.wrapping_add(carrier.rotate_left(13));
    acc = acc.rotate_left(5) ^ arg2;
    acc = acc.wrapping_add(arg2_rot);
    carrier ^ (acc << 1)
}

/// One-shot convenience over [`PipelineModel::frame`] for the per-packet
/// verify path.
pub fn expected_frame(desc: u32, egress_index: usize) -> u32 {
    PipelineModel::new().frame(desc, egress_index)
}

/// Whether the reference data path forwards this packet: TTL survives the
/// decrement *and* the (decremented, checksum-fixed) packet's destination
/// resolves in the FIB — byte-for-byte the
/// [`memsync_netapp::Workload::reference_forward`] classification.
pub fn oracle_forwards(p: &Ipv4Packet, fib: &Fib) -> bool {
    let mut q = *p;
    q.forward() && fib.lookup(q.dst).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_core::{Compiler, OrganizationKind};
    use memsync_netapp::forwarding::app_source;
    use memsync_netapp::Workload;

    /// The load-bearing pin: the software model must match the
    /// cycle-accurate simulator's egress output frame for frame, under
    /// both memory organizations. Injection is paced — one descriptor in
    /// flight at a time — because guarded locations have *sampling*
    /// semantics: a producer that writes again before every consumer has
    /// read simply overwrites, exactly as the paper's dependency-guarded
    /// memory does. The serve shards pace the same way.
    #[test]
    fn model_matches_simulated_egress_frames() {
        let mut w = Workload::generate(0xBEEF, 24, 16);
        // Force TTL-expired packets into the mix: they flow through the
        // pipeline too, carrying the in-band drop marker.
        w.packets[3].ttl = 1;
        w.packets[7].ttl = 0;
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let egress = 2usize;
            let mut c = Compiler::new(app_source(egress));
            c.organization(kind).skip_validation();
            let compiled = c.compile().expect("forwarding app compiles");
            let mut sys = memsync_sim::System::new(&compiled);
            let ids: Vec<_> = (0..egress)
                .map(|i| sys.thread_id(&format!("e{i}")).expect("egress thread"))
                .collect();
            for (k, p) in w.packets.iter().enumerate() {
                sys.push_messages("rx", [i64::from(p.descriptor())]);
                assert!(
                    sys.run_until_sent(&ids, k + 1, 5_000),
                    "packet {k} stalled under {kind}"
                );
            }
            for (i, id) in ids.iter().enumerate() {
                let frames = sys.drain_sent(*id);
                assert_eq!(frames.len(), w.packets.len());
                for (p, frame) in w.packets.iter().zip(&frames) {
                    let want = i64::from(expected_frame(p.descriptor(), i));
                    assert_eq!(
                        *frame, want,
                        "egress e{i} diverged from the model under {kind} for {p:?}"
                    );
                }
            }
            assert_eq!(
                sys.lost_updates(),
                0,
                "paced injection must not overwrite unconsumed values under {kind}"
            );
        }
    }

    /// Batch-pushing the whole workload at once *loses* packets to
    /// overwrites — documenting why the shards pace injection.
    #[test]
    fn unpaced_injection_overwrites_and_loses_packets() {
        let w = Workload::generate(0xBEEF, 24, 16);
        let mut c = Compiler::new(app_source(2));
        c.organization(OrganizationKind::Arbitrated)
            .skip_validation();
        let compiled = c.compile().expect("forwarding app compiles");
        let mut sys = memsync_sim::System::new(&compiled);
        let e0 = sys.thread_id("e0").expect("egress thread");
        sys.push_messages("rx", w.descriptors());
        for _ in 0..200_000 {
            sys.step();
        }
        let got = sys.drain_sent(e0).len();
        assert!(
            got < w.packets.len(),
            "sampling semantics should lose unpaced packets (got {got})"
        );
        // The dynamic detector agrees: the runtime counter catches the
        // same bug class the static pass (`memsync-lint --unpaced`) flags.
        assert!(
            sys.lost_updates() > 0,
            "unpaced overwrites must be counted as lost updates"
        );
    }

    /// Descriptor set covering every branchy edge the branch-free lanes
    /// must reproduce: TTL 0/1 (drop marker), 2 (smallest survivor), 255,
    /// all-ones and all-zeros prefixes, plus a seeded random spread.
    fn edge_descriptors() -> Vec<u32> {
        let mut descs = vec![
            0x0000_0000,
            0x0000_0001,
            0x0000_0002,
            0x0000_00ff,
            0xffff_ff00,
            0xffff_ff01,
            0xffff_ff02,
            0xffff_ffff,
            0xc0a8_0140,
            0x0a0b_0c02,
        ];
        let mut state = 0xD5C4_B3A2_9180_7060u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            descs.push((state >> 32) as u32);
        }
        descs
    }

    #[test]
    fn batch_kernels_match_scalar_byte_for_byte() {
        let model = PipelineModel::new();
        let descs = edge_descriptors();
        // Odd lengths exercise both the full BATCH_LANES chunks and every
        // possible remainder width (including 0 and a sub-lane batch).
        for n in [0usize, 1, 7, 15, 16, 17, 31, 64, 100, descs.len()] {
            let batch = &descs[..n];
            let mut carriers = vec![0u32; n];
            model.carrier_batch(batch, &mut carriers);
            for (desc, got) in batch.iter().zip(&carriers) {
                assert_eq!(*got, model.carrier(*desc), "carrier for {desc:#010x}");
            }
            for egress in 0..5 {
                let mut frames = vec![0u32; n];
                model.scramble_batch(&carriers, egress, &mut frames);
                for ((desc, carrier), got) in batch.iter().zip(&carriers).zip(&frames) {
                    assert_eq!(
                        *got,
                        model.scramble(*carrier, egress),
                        "scramble e{egress} for {desc:#010x}"
                    );
                    assert_eq!(*got, model.frame(*desc, egress), "frame composition");
                }
            }
        }
    }

    #[test]
    fn expected_descriptor_handles_ttl_edge() {
        // ttl 0 and 1 both drop; ttl 2 decrements.
        assert_eq!(expected_descriptor(0xc0a8_0100), 0);
        assert_eq!(expected_descriptor(0xc0a8_0101), 0);
        assert_eq!(expected_descriptor(0xc0a8_0102), 0xc0a8_0101);
    }

    #[test]
    fn oracle_matches_reference_forward_totals() {
        let w = Workload::generate(42, 300, 32);
        let (fwd, drop) = w.reference_forward();
        let model_fwd = w
            .packets
            .iter()
            .filter(|p| oracle_forwards(p, &w.fib))
            .count();
        assert_eq!(model_fwd, fwd);
        assert_eq!(w.packets.len() - model_fwd, drop);
    }
}
