//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a big-endian `u32` payload length followed by the
//! payload; the first payload byte is the frame type. Request types live
//! below `0x80`, response types at or above it. The full layout is
//! documented in EXPERIMENTS.md ("Serving traffic").
//!
//! Packets travel as the exact 20-byte header [`Ipv4Packet::to_bytes`]
//! emits; the decode side uses the strict [`Ipv4Packet::from_bytes`]
//! (IHL and checksum validated), so a corrupted header is rejected at the
//! frame boundary instead of flowing into a shard.

use memsync_netapp::packet::ParsePacketError;
use memsync_netapp::Ipv4Packet;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload (1 MiB) — a malformed length prefix
/// must not allocate unbounded memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Submit flag bit: run the per-packet verify mode (software pipeline
/// model + FIB oracle) on this batch.
pub const FLAG_VERIFY: u8 = 0x01;

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Forward a batch of packets. `verify` enables the per-packet oracle
    /// check; mismatches come back in [`Response::Batch`].
    Submit {
        /// Parsed packet headers, in submission order.
        packets: Vec<Ipv4Packet>,
        /// Whether to cross-check every packet against the software model.
        verify: bool,
    },
    /// Ask for the merged stats frame (JSON).
    Stats,
    /// Stop accepting new submits, let in-flight packets complete, reply
    /// [`Response::Drained`] once every shard is idle.
    Drain,
    /// Drain, then stop the whole service (the server process exits 0).
    Shutdown,
    /// Fault injection: make shard `shard` panic on its next activation
    /// (exercises the supervisor restart path).
    Kill(u16),
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic acknowledgement (shutdown, kill).
    Ok,
    /// A submit batch completed.
    Batch {
        /// Packets the oracle classified as forwarded.
        forwarded: u32,
        /// Packets dropped (TTL expiry or no route).
        dropped: u32,
        /// Verify-mode mismatches (0 when verify was off).
        mismatches: u32,
    },
    /// Backpressure: a target shard queue was full; *nothing* from the
    /// submit was enqueued. The payload names the first full shard.
    Busy(u16),
    /// The merged stats frame as a JSON document.
    Stats(String),
    /// Drain completed: queues empty, shards idle.
    Drained,
    /// The request failed; nothing was silently dropped — the message
    /// says what happened.
    Error(String),
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_PAYLOAD`] or the payload was
    /// structurally malformed.
    Malformed(String),
    /// A submitted packet header failed the strict parse.
    BadPacket(ParsePacketError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::BadPacket(e) => write!(f, "bad packet in submit: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---- request encode/decode -------------------------------------------

const REQ_SUBMIT: u8 = 0x01;
const REQ_STATS: u8 = 0x02;
const REQ_DRAIN: u8 = 0x03;
const REQ_SHUTDOWN: u8 = 0x04;
const REQ_KILL: u8 = 0x05;
const RSP_OK: u8 = 0x80;
const RSP_BATCH: u8 = 0x81;
const RSP_BUSY: u8 = 0x82;
const RSP_STATS: u8 = 0x83;
const RSP_DRAINED: u8 = 0x84;
const RSP_ERROR: u8 = 0x85;

impl Request {
    /// Serializes the request payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit { packets, verify } => {
                let mut v = Vec::with_capacity(4 + packets.len() * 20);
                v.push(REQ_SUBMIT);
                v.push(if *verify { FLAG_VERIFY } else { 0 });
                v.extend_from_slice(&(packets.len() as u16).to_be_bytes());
                for p in packets {
                    v.extend_from_slice(&p.to_bytes());
                }
                v
            }
            Request::Stats => vec![REQ_STATS],
            Request::Drain => vec![REQ_DRAIN],
            Request::Shutdown => vec![REQ_SHUTDOWN],
            Request::Kill(shard) => {
                let mut v = vec![REQ_KILL];
                v.extend_from_slice(&shard.to_be_bytes());
                v
            }
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown types, length mismatches, and (for submits) any
    /// packet header the strict parser rejects.
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        let (&ty, body) = payload
            .split_first()
            .ok_or_else(|| FrameError::Malformed("empty payload".into()))?;
        match ty {
            REQ_SUBMIT => {
                if body.len() < 3 {
                    return Err(FrameError::Malformed("short submit header".into()));
                }
                let verify = body[0] & FLAG_VERIFY != 0;
                let count = u16::from_be_bytes([body[1], body[2]]) as usize;
                let bytes = &body[3..];
                if bytes.len() != count * 20 {
                    return Err(FrameError::Malformed(format!(
                        "submit length {} != {count} packets x 20",
                        bytes.len()
                    )));
                }
                let mut packets = Vec::with_capacity(count);
                for chunk in bytes.chunks_exact(20) {
                    packets.push(Ipv4Packet::from_bytes(chunk).map_err(FrameError::BadPacket)?);
                }
                Ok(Request::Submit { packets, verify })
            }
            REQ_STATS => Ok(Request::Stats),
            REQ_DRAIN => Ok(Request::Drain),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            REQ_KILL => {
                if body.len() != 2 {
                    return Err(FrameError::Malformed("kill wants a u16 shard".into()));
                }
                Ok(Request::Kill(u16::from_be_bytes([body[0], body[1]])))
            }
            other => Err(FrameError::Malformed(format!(
                "unknown request {other:#04x}"
            ))),
        }
    }
}

impl Response {
    /// Serializes the response payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok => vec![RSP_OK],
            Response::Batch {
                forwarded,
                dropped,
                mismatches,
            } => {
                let mut v = Vec::with_capacity(13);
                v.push(RSP_BATCH);
                v.extend_from_slice(&forwarded.to_be_bytes());
                v.extend_from_slice(&dropped.to_be_bytes());
                v.extend_from_slice(&mismatches.to_be_bytes());
                v
            }
            Response::Busy(shard) => {
                let mut v = vec![RSP_BUSY];
                v.extend_from_slice(&shard.to_be_bytes());
                v
            }
            Response::Stats(json) => {
                let mut v = Vec::with_capacity(1 + json.len());
                v.push(RSP_STATS);
                v.extend_from_slice(json.as_bytes());
                v
            }
            Response::Drained => vec![RSP_DRAINED],
            Response::Error(msg) => {
                let mut v = Vec::with_capacity(1 + msg.len());
                v.push(RSP_ERROR);
                v.extend_from_slice(msg.as_bytes());
                v
            }
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown types and length mismatches.
    pub fn decode(payload: &[u8]) -> Result<Response, FrameError> {
        let (&ty, body) = payload
            .split_first()
            .ok_or_else(|| FrameError::Malformed("empty payload".into()))?;
        let utf8 = |b: &[u8]| {
            String::from_utf8(b.to_vec()).map_err(|_| FrameError::Malformed("non-utf8 text".into()))
        };
        match ty {
            RSP_OK => Ok(Response::Ok),
            RSP_BATCH => {
                if body.len() != 12 {
                    return Err(FrameError::Malformed("batch wants 3 x u32".into()));
                }
                let f = u32::from_be_bytes(body[0..4].try_into().expect("checked"));
                let d = u32::from_be_bytes(body[4..8].try_into().expect("checked"));
                let m = u32::from_be_bytes(body[8..12].try_into().expect("checked"));
                Ok(Response::Batch {
                    forwarded: f,
                    dropped: d,
                    mismatches: m,
                })
            }
            RSP_BUSY => {
                if body.len() != 2 {
                    return Err(FrameError::Malformed("busy wants a u16 shard".into()));
                }
                Ok(Response::Busy(u16::from_be_bytes([body[0], body[1]])))
            }
            RSP_STATS => Ok(Response::Stats(utf8(body)?)),
            RSP_DRAINED => Ok(Response::Drained),
            RSP_ERROR => Ok(Response::Error(utf8(body)?)),
            other => Err(FrameError::Malformed(format!(
                "unknown response {other:#04x}"
            ))),
        }
    }
}

// ---- framed I/O -------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures (including write-deadline expiry).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
///
/// # Errors
///
/// Propagates I/O failures and rejects frames above [`MAX_PAYLOAD`] with
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_PAYLOAD} cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_netapp::Workload;

    #[test]
    fn request_round_trips() {
        let w = Workload::generate(3, 5, 8);
        let reqs = [
            Request::Submit {
                packets: w.packets.clone(),
                verify: true,
            },
            Request::Submit {
                packets: Vec::new(),
                verify: false,
            },
            Request::Stats,
            Request::Drain,
            Request::Shutdown,
            Request::Kill(3),
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        let rsps = [
            Response::Ok,
            Response::Batch {
                forwarded: 7,
                dropped: 2,
                mismatches: 0,
            },
            Response::Busy(2),
            Response::Stats("{\"x\":1}".into()),
            Response::Drained,
            Response::Error("nope".into()),
        ];
        for r in rsps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn submit_rejects_corrupted_packet_bytes() {
        let w = Workload::generate(3, 2, 8);
        let mut bytes = Request::Submit {
            packets: w.packets.clone(),
            verify: false,
        }
        .encode();
        // Flip a TTL byte inside the first packed header: the strict
        // parser must catch the checksum mismatch at the frame boundary.
        bytes[4 + 8] ^= 0xff;
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::BadPacket(ParsePacketError::BadChecksum { .. }))
        ));
    }

    #[test]
    fn submit_rejects_length_mismatch() {
        let mut bytes = Request::Submit {
            packets: Workload::generate(1, 2, 8).packets,
            verify: false,
        }
        .encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn framed_io_round_trips_and_detects_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
