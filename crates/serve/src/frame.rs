//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a big-endian `u32` payload length followed by the
//! payload; the first payload byte is the frame type. Request types live
//! below `0x80`, response types at or above it. The full layout is
//! documented in EXPERIMENTS.md ("Serving traffic").
//!
//! **Protocol v2 (this build)** is negotiated at connect time: the client
//! speaks first with [`Request::Hello`] carrying the version range it
//! supports, and the server answers [`Response::Hello`] with the settled
//! version plus a [`ServerHello`] capability block (which forwarding
//! backends the build supports, which one is serving, shard count, egress
//! width, FIB routes). Any other first request is refused with a typed
//! [`Response::Error`] and a clean close — never a frame desync. A v1
//! client (pre-`Hello`) talking to a v2 server therefore gets an explicit
//! error it already knows how to decode, and a v2 client talking to a v1
//! server maps the v1 `unknown request` error onto a typed
//! `Unsupported` connect failure.
//!
//! Packets travel as the exact 20-byte header [`Ipv4Packet::to_bytes`]
//! emits; the decode side uses the strict [`Ipv4Packet::from_bytes`]
//! (IHL and checksum validated), so a corrupted header is rejected at the
//! frame boundary instead of flowing into a shard.

use crate::backend::BackendKind;
use memsync_netapp::fib::Route;
use memsync_netapp::packet::ParsePacketError;
use memsync_netapp::Ipv4Packet;
use std::io::{self, Read, Write};

/// The newest protocol version this build speaks. Version 1 was the PR 3
/// wire protocol without the connect-time handshake; version 2 added
/// [`Request::Hello`]/[`Response::Hello`] negotiation, [`SubmitOptions`]
/// flags, and backend capability bits; version 3 added the live control
/// plane ([`Request::RouteAdd`] / [`Request::RouteWithdraw`] /
/// [`Request::SwapDefault`] behind [`CAP_CONTROL`]).
pub const PROTOCOL_VERSION: u16 = 3;

/// The oldest protocol version this build still serves. A v2 client
/// (no control frames) settles on version 2 and is served exactly as
/// before; control frames on a settled-v2 connection are refused with a
/// typed [`Response::Error`] — a frame every protocol version decodes.
pub const PROTOCOL_MIN_SUPPORTED: u16 = 2;

/// Settles the protocol version for a client advertising the closed
/// range `[client_min, client_max]`: the highest version both sides
/// speak, or `None` when the ranges don't overlap.
pub fn settle_version(client_min: u16, client_max: u16) -> Option<u16> {
    let settled = client_max.min(PROTOCOL_VERSION);
    (client_min <= settled && settled >= PROTOCOL_MIN_SUPPORTED).then_some(settled)
}

/// Hard ceiling on a frame payload (1 MiB) — a malformed length prefix
/// must not allocate unbounded memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Most packets one submit frame can carry. Two limits apply — the u16
/// count field (65535) and the [`MAX_PAYLOAD`] frame cap (the largest
/// submit header is 12 bytes — type, flags, optional 8-byte span id,
/// 2-byte count — plus 20 bytes per packet) — and the frame cap is
/// the tighter one. Encoding a larger batch panics on the sending side
/// instead of truncating the count on the wire.
pub const MAX_SUBMIT_PACKETS: usize = (MAX_PAYLOAD - 12) / 20;

/// Submit flag bit: run the per-packet verify mode (software pipeline
/// model + FIB oracle) on this batch.
pub const FLAG_VERIFY: u8 = 0x01;

/// Submit flag bit: the submit carries a client-assigned 8-byte span id
/// between the flags byte and the packet count (request tracing). Only
/// valid against servers advertising [`CAP_TRACING`]; the client refuses
/// locally otherwise.
pub const FLAG_SPAN: u8 = 0x02;

/// Hello capability bit: the server supports request tracing (span-tagged
/// submits via [`FLAG_SPAN`]) and [`Request::StatsStream`]. Lives above
/// the backend capability bits ([`crate::backend::CAP_SIM`] and friends).
pub const CAP_TRACING: u8 = 0x08;

/// Hello capability bit: the server supports the protocol-v3 live
/// control plane — [`Request::RouteAdd`], [`Request::RouteWithdraw`],
/// and [`Request::SwapDefault`] mutate the FIB at runtime via
/// RCU-style epoch-swapped tables. Only usable on connections that
/// settled version ≥ 3; the client refuses locally otherwise.
pub const CAP_CONTROL: u8 = 0x10;

/// Most routes one control frame ([`Request::RouteAdd`] /
/// [`Request::RouteWithdraw`]) can carry — the wire count field is a
/// `u16`. Encoding a larger mutation panics on the sending side instead
/// of truncating the count on the wire.
pub const MAX_CONTROL_ROUTES: usize = u16::MAX as usize;

/// Typed per-submit options — the wire flags byte, decoded. Replaces the
/// bare `verify: bool` of protocol v1 so new flags extend the struct
/// instead of sprouting positional booleans through every layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Cross-check every packet against the software pipeline model and
    /// FIB oracle; mismatches come back in [`Response::Batch`].
    pub verify: bool,
    /// Client-assigned span id for request tracing ([`FLAG_SPAN`] on the
    /// wire). `None` leaves the batch untagged; a tracing-enabled server
    /// then assigns its own id (high bit set).
    pub span_id: Option<u64>,
}

impl SubmitOptions {
    /// Default options: no verification, no span tag.
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Sets the per-packet verify mode.
    #[must_use]
    pub fn verify(mut self, on: bool) -> SubmitOptions {
        self.verify = on;
        self
    }

    /// Tags the batch with a client-assigned span id.
    #[must_use]
    pub fn span(mut self, id: u64) -> SubmitOptions {
        self.span_id = Some(id);
        self
    }

    /// The wire flags byte.
    pub fn to_flags(self) -> u8 {
        let mut flags = 0;
        if self.verify {
            flags |= FLAG_VERIFY;
        }
        if self.span_id.is_some() {
            flags |= FLAG_SPAN;
        }
        flags
    }

    /// Decodes a wire flags byte (unknown bits are ignored for forward
    /// compatibility within a negotiated version). The span id itself
    /// travels in the submit body, not the flags byte — the submit
    /// decoder fills it in when [`FLAG_SPAN`] is set.
    pub fn from_flags(flags: u8) -> SubmitOptions {
        SubmitOptions {
            verify: flags & FLAG_VERIFY != 0,
            span_id: None,
        }
    }
}

/// What a server tells a client at connect time: the settled protocol
/// version and the serving capabilities the client may rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// The protocol version the server settled on (currently always
    /// [`PROTOCOL_VERSION`]).
    pub version: u16,
    /// Capability bits: which forwarding backends this build supports
    /// (see [`crate::backend::CAP_SIM`] and friends).
    pub capabilities: u8,
    /// The backend actually serving this instance.
    pub backend: BackendKind,
    /// Shard count — [`Request::Kill`] indices are validated against it
    /// client-side.
    pub shards: u16,
    /// Egress consumer count of the compiled forwarding application.
    pub egress: u16,
    /// Route count of the server's synthetic FIB (the loadgen must
    /// generate against the same table).
    pub routes: u32,
}

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Protocol negotiation — must be the first frame on a connection.
    /// Carries the closed range of protocol versions the client speaks;
    /// the server settles on one ([`Response::Hello`]) or refuses with a
    /// typed error and closes.
    Hello {
        /// Lowest protocol version the client accepts.
        min_version: u16,
        /// Highest protocol version the client accepts.
        max_version: u16,
    },
    /// Forward a batch of packets.
    Submit {
        /// Parsed packet headers, in submission order.
        packets: Vec<Ipv4Packet>,
        /// Typed per-submit options (verify mode, future flags).
        options: SubmitOptions,
    },
    /// Ask for the merged stats frame (JSON).
    Stats,
    /// Subscribe to pushed stats: the server sends a
    /// [`Response::StatsPush`] immediately and then roughly every
    /// `interval_ms` until the client sends any other frame (which is
    /// answered normally and ends the stream). Capability-gated behind
    /// [`CAP_TRACING`].
    StatsStream {
        /// Push interval in milliseconds (must be nonzero).
        interval_ms: u32,
    },
    /// Stop accepting new submits, let in-flight packets complete, reply
    /// [`Response::Drained`] once every shard is idle.
    Drain,
    /// Drain, then stop the whole service (the server process exits 0).
    Shutdown,
    /// Fault injection: make shard `shard` panic on its next activation
    /// (exercises the supervisor restart path).
    Kill(u16),
    /// Control plane (v3): insert (or replace) a batch of routes. The
    /// server applies the whole batch to the trie oracle, compiles a
    /// fresh flat classifier, publishes it as a new table generation,
    /// and answers [`Response::RouteUpdated`] only after every shard has
    /// acknowledged the swap (the old generation is retired).
    RouteAdd(Vec<Route>),
    /// Control plane (v3): withdraw a batch of routes by exact
    /// `prefix/len`. Absent routes are skipped (reflected in the
    /// response's `applied` count), not errors — withdraw is idempotent.
    RouteWithdraw(Vec<(u32, u8)>),
    /// Control plane (v3): atomically swap the default route's next hop
    /// (shorthand for a one-route `RouteAdd` of `0/0`).
    SwapDefault {
        /// The new next hop for the `0/0` route.
        next_hop: u32,
    },
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The settled protocol version and server capabilities (the answer
    /// to [`Request::Hello`]).
    Hello(ServerHello),
    /// Generic acknowledgement (shutdown, kill).
    Ok,
    /// A submit batch completed.
    Batch {
        /// Packets the oracle classified as forwarded.
        forwarded: u32,
        /// Packets dropped (TTL expiry or no route).
        dropped: u32,
        /// Verify-mode mismatches (0 when verify was off).
        mismatches: u32,
    },
    /// Backpressure: a target shard queue was full; *nothing* from the
    /// submit was enqueued. The payload names the first full shard.
    Busy(u16),
    /// The merged stats frame as a JSON document.
    Stats(String),
    /// One pushed stats document of an active [`Request::StatsStream`].
    /// Deliberately a distinct frame type from [`Response::Stats`]: a
    /// client stopping a stream sends a plain [`Request::Stats`] and
    /// discards pushes until the non-push `Stats` answer arrives, which
    /// marks the stream cleanly ended with no frame ambiguity.
    StatsPush(String),
    /// Drain completed: queues empty, shards idle.
    Drained,
    /// A control-plane mutation was published and the swap barrier
    /// completed (the answer to the v3 route frames).
    RouteUpdated {
        /// The table generation the mutation landed in. Strictly
        /// monotonic; a client can order concurrent mutations by it.
        generation: u64,
        /// Total routes in the published table.
        routes: u32,
        /// Mutations actually effected (a withdraw of an absent route
        /// does not count).
        applied: u32,
    },
    /// The request failed; nothing was silently dropped — the message
    /// says what happened.
    Error(String),
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_PAYLOAD`] or the payload was
    /// structurally malformed.
    Malformed(String),
    /// A submitted packet header failed the strict parse.
    BadPacket(ParsePacketError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::BadPacket(e) => write!(f, "bad packet in submit: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---- request encode/decode -------------------------------------------

const REQ_SUBMIT: u8 = 0x01;
const REQ_STATS: u8 = 0x02;
const REQ_DRAIN: u8 = 0x03;
const REQ_SHUTDOWN: u8 = 0x04;
const REQ_KILL: u8 = 0x05;
const REQ_HELLO: u8 = 0x06;
const REQ_STATS_STREAM: u8 = 0x07;
const REQ_ROUTE_ADD: u8 = 0x08;
const REQ_ROUTE_WITHDRAW: u8 = 0x09;
const REQ_SWAP_DEFAULT: u8 = 0x0a;
const RSP_OK: u8 = 0x80;
const RSP_BATCH: u8 = 0x81;
const RSP_BUSY: u8 = 0x82;
const RSP_STATS: u8 = 0x83;
const RSP_DRAINED: u8 = 0x84;
const RSP_ERROR: u8 = 0x85;
const RSP_HELLO: u8 = 0x86;
const RSP_STATS_PUSH: u8 = 0x87;
const RSP_ROUTE_UPDATED: u8 = 0x88;

/// Validates a route's shape at the frame boundary: length in range and
/// no host bits, so a malformed control frame is rejected before it can
/// reach (and panic) the trie.
fn check_route(prefix: u32, len: u8) -> Result<(), FrameError> {
    if len > 32 {
        return Err(FrameError::Malformed(format!(
            "route prefix length {len} out of range"
        )));
    }
    if len < 32 && prefix & ((1u64 << (32 - len)) - 1) as u32 != 0 {
        return Err(FrameError::Malformed(format!(
            "host bits set in route {prefix:#010x}/{len}"
        )));
    }
    Ok(())
}

impl Request {
    /// The request's wire name (error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Submit { .. } => "submit",
            Request::Stats => "stats",
            Request::StatsStream { .. } => "stats-stream",
            Request::Drain => "drain",
            Request::Shutdown => "shutdown",
            Request::Kill(_) => "kill",
            Request::RouteAdd(_) => "route-add",
            Request::RouteWithdraw(_) => "route-withdraw",
            Request::SwapDefault { .. } => "swap-default",
        }
    }

    /// Whether this request is a v3 control-plane frame (gated behind a
    /// settled version ≥ 3 and [`CAP_CONTROL`]).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::RouteAdd(_) | Request::RouteWithdraw(_) | Request::SwapDefault { .. }
        )
    }

    /// Serializes the request payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello {
                min_version,
                max_version,
            } => {
                let mut v = vec![REQ_HELLO];
                v.extend_from_slice(&min_version.to_be_bytes());
                v.extend_from_slice(&max_version.to_be_bytes());
                v
            }
            Request::Submit { packets, options } => {
                let mut v = Vec::new();
                encode_submit_into(packets, *options, &mut v);
                v
            }
            Request::Stats => vec![REQ_STATS],
            Request::StatsStream { interval_ms } => {
                let mut v = vec![REQ_STATS_STREAM];
                v.extend_from_slice(&interval_ms.to_be_bytes());
                v
            }
            Request::Drain => vec![REQ_DRAIN],
            Request::Shutdown => vec![REQ_SHUTDOWN],
            Request::Kill(shard) => {
                let mut v = vec![REQ_KILL];
                v.extend_from_slice(&shard.to_be_bytes());
                v
            }
            Request::RouteAdd(routes) => {
                assert!(
                    routes.len() <= MAX_CONTROL_ROUTES,
                    "route-add of {} routes exceeds the {MAX_CONTROL_ROUTES}-route frame cap",
                    routes.len()
                );
                let mut v = Vec::with_capacity(3 + routes.len() * 9);
                v.push(REQ_ROUTE_ADD);
                v.extend_from_slice(&(routes.len() as u16).to_be_bytes());
                for r in routes {
                    v.extend_from_slice(&r.prefix.to_be_bytes());
                    v.push(r.len);
                    v.extend_from_slice(&r.next_hop.to_be_bytes());
                }
                v
            }
            Request::RouteWithdraw(prefixes) => {
                assert!(
                    prefixes.len() <= MAX_CONTROL_ROUTES,
                    "route-withdraw of {} routes exceeds the {MAX_CONTROL_ROUTES}-route frame cap",
                    prefixes.len()
                );
                let mut v = Vec::with_capacity(3 + prefixes.len() * 5);
                v.push(REQ_ROUTE_WITHDRAW);
                v.extend_from_slice(&(prefixes.len() as u16).to_be_bytes());
                for (prefix, len) in prefixes {
                    v.extend_from_slice(&prefix.to_be_bytes());
                    v.push(*len);
                }
                v
            }
            Request::SwapDefault { next_hop } => {
                let mut v = vec![REQ_SWAP_DEFAULT];
                v.extend_from_slice(&next_hop.to_be_bytes());
                v
            }
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown types, length mismatches, and (for submits) any
    /// packet header the strict parser rejects.
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        let (&ty, body) = payload
            .split_first()
            .ok_or_else(|| FrameError::Malformed("empty payload".into()))?;
        match ty {
            REQ_HELLO => {
                if body.len() != 4 {
                    return Err(FrameError::Malformed("hello wants 2 x u16".into()));
                }
                Ok(Request::Hello {
                    min_version: u16::from_be_bytes([body[0], body[1]]),
                    max_version: u16::from_be_bytes([body[2], body[3]]),
                })
            }
            REQ_SUBMIT => {
                let mut packets = Vec::new();
                let options = decode_submit_into(payload, &mut packets)?;
                Ok(Request::Submit { packets, options })
            }
            REQ_STATS => Ok(Request::Stats),
            REQ_STATS_STREAM => {
                if body.len() != 4 {
                    return Err(FrameError::Malformed("stats-stream wants a u32".into()));
                }
                Ok(Request::StatsStream {
                    interval_ms: u32::from_be_bytes(body.try_into().expect("checked")),
                })
            }
            REQ_DRAIN => Ok(Request::Drain),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            REQ_KILL => {
                if body.len() != 2 {
                    return Err(FrameError::Malformed("kill wants a u16 shard".into()));
                }
                Ok(Request::Kill(u16::from_be_bytes([body[0], body[1]])))
            }
            REQ_ROUTE_ADD => {
                if body.len() < 2 {
                    return Err(FrameError::Malformed("short route-add header".into()));
                }
                let count = u16::from_be_bytes([body[0], body[1]]) as usize;
                let bytes = &body[2..];
                if bytes.len() != count * 9 {
                    return Err(FrameError::Malformed(format!(
                        "route-add length {} != {count} routes x 9",
                        bytes.len()
                    )));
                }
                let mut routes = Vec::with_capacity(count);
                for chunk in bytes.chunks_exact(9) {
                    let prefix = u32::from_be_bytes(chunk[0..4].try_into().expect("checked"));
                    let len = chunk[4];
                    check_route(prefix, len)?;
                    routes.push(Route {
                        prefix,
                        len,
                        next_hop: u32::from_be_bytes(chunk[5..9].try_into().expect("checked")),
                    });
                }
                Ok(Request::RouteAdd(routes))
            }
            REQ_ROUTE_WITHDRAW => {
                if body.len() < 2 {
                    return Err(FrameError::Malformed("short route-withdraw header".into()));
                }
                let count = u16::from_be_bytes([body[0], body[1]]) as usize;
                let bytes = &body[2..];
                if bytes.len() != count * 5 {
                    return Err(FrameError::Malformed(format!(
                        "route-withdraw length {} != {count} routes x 5",
                        bytes.len()
                    )));
                }
                let mut prefixes = Vec::with_capacity(count);
                for chunk in bytes.chunks_exact(5) {
                    let prefix = u32::from_be_bytes(chunk[0..4].try_into().expect("checked"));
                    let len = chunk[4];
                    check_route(prefix, len)?;
                    prefixes.push((prefix, len));
                }
                Ok(Request::RouteWithdraw(prefixes))
            }
            REQ_SWAP_DEFAULT => {
                if body.len() != 4 {
                    return Err(FrameError::Malformed("swap-default wants a u32".into()));
                }
                Ok(Request::SwapDefault {
                    next_hop: u32::from_be_bytes(body.try_into().expect("checked")),
                })
            }
            other => Err(FrameError::Malformed(format!(
                "unknown request {other:#04x}"
            ))),
        }
    }
}

impl Response {
    /// Serializes the response payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode_into(&mut v);
        v
    }

    /// Serializes the response payload into `out`, which is cleared
    /// first. A connection reuses one scratch buffer across responses so
    /// steady-state encoding allocates nothing once the buffer has grown
    /// to the largest response it has carried.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Response::Hello(h) => {
                out.reserve(13);
                out.push(RSP_HELLO);
                out.extend_from_slice(&h.version.to_be_bytes());
                out.push(h.capabilities);
                out.push(h.backend.wire_code());
                out.extend_from_slice(&h.shards.to_be_bytes());
                out.extend_from_slice(&h.egress.to_be_bytes());
                out.extend_from_slice(&h.routes.to_be_bytes());
            }
            Response::Ok => out.push(RSP_OK),
            Response::Batch {
                forwarded,
                dropped,
                mismatches,
            } => {
                out.reserve(13);
                out.push(RSP_BATCH);
                out.extend_from_slice(&forwarded.to_be_bytes());
                out.extend_from_slice(&dropped.to_be_bytes());
                out.extend_from_slice(&mismatches.to_be_bytes());
            }
            Response::Busy(shard) => {
                out.push(RSP_BUSY);
                out.extend_from_slice(&shard.to_be_bytes());
            }
            Response::Stats(json) => {
                out.reserve(1 + json.len());
                out.push(RSP_STATS);
                out.extend_from_slice(json.as_bytes());
            }
            Response::StatsPush(json) => {
                out.reserve(1 + json.len());
                out.push(RSP_STATS_PUSH);
                out.extend_from_slice(json.as_bytes());
            }
            Response::Drained => out.push(RSP_DRAINED),
            Response::RouteUpdated {
                generation,
                routes,
                applied,
            } => {
                out.reserve(17);
                out.push(RSP_ROUTE_UPDATED);
                out.extend_from_slice(&generation.to_be_bytes());
                out.extend_from_slice(&routes.to_be_bytes());
                out.extend_from_slice(&applied.to_be_bytes());
            }
            Response::Error(msg) => {
                out.reserve(1 + msg.len());
                out.push(RSP_ERROR);
                out.extend_from_slice(msg.as_bytes());
            }
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown types and length mismatches.
    pub fn decode(payload: &[u8]) -> Result<Response, FrameError> {
        let (&ty, body) = payload
            .split_first()
            .ok_or_else(|| FrameError::Malformed("empty payload".into()))?;
        let utf8 = |b: &[u8]| {
            String::from_utf8(b.to_vec()).map_err(|_| FrameError::Malformed("non-utf8 text".into()))
        };
        match ty {
            RSP_HELLO => {
                if body.len() != 12 {
                    return Err(FrameError::Malformed("hello wants 12 bytes".into()));
                }
                let backend = BackendKind::from_wire(body[3]).ok_or_else(|| {
                    FrameError::Malformed(format!("unknown backend code {:#04x}", body[3]))
                })?;
                Ok(Response::Hello(ServerHello {
                    version: u16::from_be_bytes([body[0], body[1]]),
                    capabilities: body[2],
                    backend,
                    shards: u16::from_be_bytes([body[4], body[5]]),
                    egress: u16::from_be_bytes([body[6], body[7]]),
                    routes: u32::from_be_bytes(body[8..12].try_into().expect("checked")),
                }))
            }
            RSP_OK => Ok(Response::Ok),
            RSP_BATCH => {
                if body.len() != 12 {
                    return Err(FrameError::Malformed("batch wants 3 x u32".into()));
                }
                let f = u32::from_be_bytes(body[0..4].try_into().expect("checked"));
                let d = u32::from_be_bytes(body[4..8].try_into().expect("checked"));
                let m = u32::from_be_bytes(body[8..12].try_into().expect("checked"));
                Ok(Response::Batch {
                    forwarded: f,
                    dropped: d,
                    mismatches: m,
                })
            }
            RSP_BUSY => {
                if body.len() != 2 {
                    return Err(FrameError::Malformed("busy wants a u16 shard".into()));
                }
                Ok(Response::Busy(u16::from_be_bytes([body[0], body[1]])))
            }
            RSP_STATS => Ok(Response::Stats(utf8(body)?)),
            RSP_STATS_PUSH => Ok(Response::StatsPush(utf8(body)?)),
            RSP_DRAINED => Ok(Response::Drained),
            RSP_ROUTE_UPDATED => {
                if body.len() != 16 {
                    return Err(FrameError::Malformed(
                        "route-updated wants u64 + 2 x u32".into(),
                    ));
                }
                Ok(Response::RouteUpdated {
                    generation: u64::from_be_bytes(body[0..8].try_into().expect("checked")),
                    routes: u32::from_be_bytes(body[8..12].try_into().expect("checked")),
                    applied: u32::from_be_bytes(body[12..16].try_into().expect("checked")),
                })
            }
            RSP_ERROR => Ok(Response::Error(utf8(body)?)),
            other => Err(FrameError::Malformed(format!(
                "unknown response {other:#04x}"
            ))),
        }
    }
}

/// Encodes a submit payload straight from a packet slice into `out`
/// (cleared first) — the allocation-free path [`crate::Client`] uses on
/// its hot loop: no intermediate `Vec<Ipv4Packet>` clone and, once the
/// buffer has grown to the working batch size, no allocation per submit.
/// `Request::Submit`'s own `encode` delegates here, so both paths emit
/// identical bytes.
///
/// # Panics
///
/// Panics when `packets` exceeds [`MAX_SUBMIT_PACKETS`] — the frame cap
/// must fail on the sending side, never truncate the count on the wire.
pub fn encode_submit_into(packets: &[Ipv4Packet], options: SubmitOptions, out: &mut Vec<u8>) {
    assert!(
        packets.len() <= MAX_SUBMIT_PACKETS,
        "submit of {} packets exceeds the {MAX_SUBMIT_PACKETS}-packet frame cap",
        packets.len()
    );
    out.clear();
    out.reserve(12 + packets.len() * 20);
    out.push(REQ_SUBMIT);
    out.push(options.to_flags());
    if let Some(span) = options.span_id {
        out.extend_from_slice(&span.to_be_bytes());
    }
    out.extend_from_slice(&(packets.len() as u16).to_be_bytes());
    for p in packets {
        out.extend_from_slice(&p.to_bytes());
    }
}

/// True when `payload` carries a submit request — the dispatch test the
/// server uses to route a frame onto the scratch-buffer decode path
/// ([`decode_submit_into`]) without constructing a [`Request`].
pub fn is_submit(payload: &[u8]) -> bool {
    payload.first() == Some(&REQ_SUBMIT)
}

/// Decodes a submit payload's packets into a reusable buffer (cleared
/// first) and returns the batch's options — the server-side twin of
/// [`encode_submit_into`]. A connection keeps one packet scratch across
/// submits, so the steady state performs no per-batch packet-vector
/// allocation. [`Request::decode`] delegates its submit arm here, so both
/// paths accept exactly the same frames.
///
/// # Errors
///
/// Fails when the payload is not a submit frame, on length mismatches,
/// and on any packet header the strict parser rejects.
pub fn decode_submit_into(
    payload: &[u8],
    packets: &mut Vec<Ipv4Packet>,
) -> Result<SubmitOptions, FrameError> {
    packets.clear();
    let (&ty, body) = payload
        .split_first()
        .ok_or_else(|| FrameError::Malformed("empty payload".into()))?;
    if ty != REQ_SUBMIT {
        return Err(FrameError::Malformed(format!(
            "expected a submit frame, got {ty:#04x}"
        )));
    }
    if body.len() < 3 {
        return Err(FrameError::Malformed("short submit header".into()));
    }
    let flags = body[0];
    let mut options = SubmitOptions::from_flags(flags);
    let mut rest = &body[1..];
    if flags & FLAG_SPAN != 0 {
        // An 8-byte big-endian span id precedes the count.
        if rest.len() < 8 {
            return Err(FrameError::Malformed("span flag without a span id".into()));
        }
        options.span_id = Some(u64::from_be_bytes(rest[..8].try_into().expect("checked")));
        rest = &rest[8..];
    }
    if rest.len() < 2 {
        return Err(FrameError::Malformed("short submit header".into()));
    }
    let count = u16::from_be_bytes([rest[0], rest[1]]) as usize;
    let bytes = &rest[2..];
    if bytes.len() != count * 20 {
        return Err(FrameError::Malformed(format!(
            "submit length {} != {count} packets x 20",
            bytes.len()
        )));
    }
    packets.reserve(count);
    for chunk in bytes.chunks_exact(20) {
        packets.push(Ipv4Packet::from_bytes(chunk).map_err(FrameError::BadPacket)?);
    }
    Ok(options)
}

// ---- framed I/O -------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures (including write-deadline expiry).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame decoder that survives read timeouts.
///
/// `read_exact` discards its progress on `WouldBlock`/`TimedOut`, so a
/// socket with a short read timeout (the server polls so stop/drain flags
/// are honored) would lose the bytes of a partially received frame and
/// re-enter the stream mid-frame — permanently desyncing the connection.
/// `FrameReader` instead keeps the partial length prefix and payload
/// across calls: after a timeout error, calling [`FrameReader::read`]
/// again resumes exactly where the stream left off.
///
/// The payload buffer is owned by the reader and reused across frames:
/// [`FrameReader::read`] hands out a borrowed view, valid until the next
/// call, so a long-lived connection pays no per-frame payload allocation
/// once the buffer has grown to the largest frame it has carried.
#[derive(Debug, Default)]
pub struct FrameReader {
    prefix: [u8; 4],
    prefix_got: usize,
    /// Reusable payload storage. `buf.len()` is the high-water mark, not
    /// the current frame's length — `expected` carries that — so a
    /// smaller frame after a larger one reuses the bytes without a
    /// re-zeroing pass.
    buf: Vec<u8>,
    /// Length of the frame currently being decoded (`None` while the
    /// length prefix is still incomplete).
    expected: Option<usize>,
    payload_got: usize,
}

impl FrameReader {
    /// A decoder positioned at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Bytes consumed toward the frame currently being decoded (0 at a
    /// frame boundary). Callers use this to distinguish an idle peer
    /// (no bytes — a timeout is harmless) from a stalled one and to
    /// notice progress between timeouts.
    pub fn progress(&self) -> usize {
        self.prefix_got + self.payload_got
    }

    /// Reads (or resumes reading) one length-prefixed frame. `Ok(None)`
    /// means the peer closed the connection cleanly **at a frame
    /// boundary**; an EOF after any byte of a frame was consumed is an
    /// `UnexpectedEof` error, not a clean close.
    ///
    /// The returned slice borrows the reader's internal buffer and is
    /// valid until the next `read` call.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (state is preserved across
    /// `WouldBlock`/`TimedOut`, so the call can be retried) and rejects
    /// frames above [`MAX_PAYLOAD`] with [`io::ErrorKind::InvalidData`].
    pub fn read(&mut self, r: &mut impl Read) -> io::Result<Option<&[u8]>> {
        while self.expected.is_none() {
            match r.read(&mut self.prefix[self.prefix_got..]) {
                Ok(0) => {
                    if self.prefix_got == 0 {
                        return Ok(None); // clean close at a frame boundary
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("peer closed {} bytes into a length prefix", self.prefix_got),
                    ));
                }
                Ok(n) => {
                    self.prefix_got += n;
                    if self.prefix_got == 4 {
                        let len = u32::from_be_bytes(self.prefix) as usize;
                        if len > MAX_PAYLOAD {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("frame of {len} bytes exceeds the {MAX_PAYLOAD} cap"),
                            ));
                        }
                        // Grow-only: every byte of `buf[..len]` is
                        // overwritten by reads before the slice is
                        // returned, so shrinking (or re-zeroing reused
                        // capacity) would be wasted work.
                        if self.buf.len() < len {
                            self.buf.resize(len, 0);
                        }
                        self.expected = Some(len);
                        self.payload_got = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        loop {
            let len = self.expected.expect("length decoded above");
            if self.payload_got == len {
                self.expected = None;
                self.prefix_got = 0;
                self.payload_got = 0;
                return Ok(Some(&self.buf[..len]));
            }
            match r.read(&mut self.buf[self.payload_got..len]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "peer closed {} bytes into a {len}-byte payload",
                            self.payload_got
                        ),
                    ));
                }
                Ok(n) => self.payload_got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Nonblocking write-side twin of [`FrameReader`]: a per-connection
/// egress queue with `WouldBlock`-resumable partial writes.
///
/// The blocking server writes responses with [`write_frame`], which
/// blocks until the socket accepts every byte. A readiness-driven
/// frontend cannot block: it enqueues the encoded payload here (the
/// length prefix is added by `enqueue`) and calls [`FrameWriter::write`]
/// whenever the socket reports writable. A partial write leaves the
/// cursor mid-frame; the next call resumes at the exact byte where the
/// kernel stopped accepting, so frame boundaries are never corrupted by
/// backpressure.
///
/// The buffer is reused across frames: fully drained, it resets to
/// empty; partially drained, `enqueue` compacts the unsent tail to the
/// front before appending, so a long-lived connection's buffer is
/// bounded by its egress high-water mark, not its lifetime.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    pos: usize,
    high_water: usize,
}

impl FrameWriter {
    /// An empty egress queue.
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Appends one frame (length prefix + `payload`) to the egress queue.
    pub fn enqueue(&mut self, payload: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 0 {
            // Compact the unsent tail to the front so the buffer tracks
            // the pending byte count instead of growing for the life of
            // the connection.
            self.buf.copy_within(self.pos.., 0);
            let pending = self.buf.len() - self.pos;
            self.buf.truncate(pending);
            self.pos = 0;
        }
        self.buf.reserve(4 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(payload);
        self.high_water = self.high_water.max(self.pending());
    }

    /// Bytes enqueued but not yet accepted by the sink.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Largest pending byte count ever observed (egress memory bound).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Writes as much of the queue as `w` accepts. Returns `Ok(true)`
    /// when the queue drained completely and `Ok(false)` when the sink
    /// stopped accepting bytes (`WouldBlock` — keep write interest and
    /// call again on the next writable event).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than `WouldBlock`/`Interrupted`; a
    /// sink that accepts zero bytes surfaces as `WriteZero`. The cursor
    /// is preserved across every error, so retrying never corrupts a
    /// frame boundary.
    pub fn write(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "sink accepted zero bytes of a pending frame",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// Reads one length-prefixed frame from a blocking stream. `Ok(None)`
/// means the peer closed the connection cleanly at a frame boundary; an
/// EOF inside a frame (even inside the length prefix) is an
/// `UnexpectedEof` error.
///
/// # Errors
///
/// Propagates I/O failures and rejects frames above [`MAX_PAYLOAD`] with
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut fr = FrameReader::new();
    Ok(fr.read(r)?.map(<[u8]>::to_vec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_netapp::Workload;

    #[test]
    fn request_round_trips() {
        let w = Workload::generate(3, 5, 8);
        let reqs = [
            Request::Hello {
                min_version: 1,
                max_version: PROTOCOL_VERSION,
            },
            Request::Submit {
                packets: w.packets.clone(),
                options: SubmitOptions::new().verify(true),
            },
            Request::Submit {
                packets: Vec::new(),
                options: SubmitOptions::new(),
            },
            Request::Submit {
                packets: w.packets.clone(),
                options: SubmitOptions::new().verify(true).span(0xDEAD_BEEF_0042),
            },
            Request::Stats,
            Request::StatsStream { interval_ms: 250 },
            Request::Drain,
            Request::Shutdown,
            Request::Kill(3),
            Request::RouteAdd(vec![
                Route {
                    prefix: 0x0a00_0000,
                    len: 8,
                    next_hop: 42,
                },
                Route {
                    prefix: 0,
                    len: 0,
                    next_hop: 7,
                },
                Route {
                    prefix: 0xc0a8_0101,
                    len: 32,
                    next_hop: 9,
                },
            ]),
            Request::RouteAdd(Vec::new()),
            Request::RouteWithdraw(vec![(0x0a00_0000, 8), (0, 0)]),
            Request::SwapDefault { next_hop: 17 },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        let rsps = [
            Response::Hello(ServerHello {
                version: PROTOCOL_VERSION,
                capabilities: crate::backend::capability_bits(),
                backend: BackendKind::Differential,
                shards: 4,
                egress: 4,
                routes: 64,
            }),
            Response::Ok,
            Response::Batch {
                forwarded: 7,
                dropped: 2,
                mismatches: 0,
            },
            Response::Busy(2),
            Response::Stats("{\"x\":1}".into()),
            Response::StatsPush("{\"x\":2}".into()),
            Response::Drained,
            Response::RouteUpdated {
                generation: 0x0102_0304_0506_0708,
                routes: 65,
                applied: 3,
            },
            Response::Error("nope".into()),
        ];
        for r in rsps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn encode_into_a_reused_buffer_matches_encode() {
        // One scratch buffer across differently-sized responses: each
        // encode must clear the previous payload, never append to it.
        let rsps = [
            Response::Stats("{\"a\":1,\"padding\":\"xxxxxxxxxxxxxxxx\"}".into()),
            Response::Ok,
            Response::Busy(7),
            Response::Error("short".into()),
        ];
        let mut scratch = Vec::new();
        for r in &rsps {
            r.encode_into(&mut scratch);
            assert_eq!(scratch, r.encode());
        }
    }

    #[test]
    fn submit_rejects_corrupted_packet_bytes() {
        let w = Workload::generate(3, 2, 8);
        let mut bytes = Request::Submit {
            packets: w.packets.clone(),
            options: SubmitOptions::new(),
        }
        .encode();
        // Flip a TTL byte inside the first packed header: the strict
        // parser must catch the checksum mismatch at the frame boundary.
        bytes[4 + 8] ^= 0xff;
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::BadPacket(ParsePacketError::BadChecksum { .. }))
        ));
    }

    #[test]
    fn span_flag_without_span_id_is_malformed() {
        // A frame claiming FLAG_SPAN but truncated before the 8-byte id.
        let bytes = [REQ_SUBMIT, FLAG_SPAN, 0x00, 0x01, 0x02];
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn tracing_capability_is_distinct_from_backend_bits() {
        assert_eq!(CAP_TRACING & crate::backend::capability_bits(), 0);
    }

    #[test]
    fn control_capability_is_its_own_bit() {
        assert_eq!(CAP_CONTROL & crate::backend::capability_bits(), 0);
        assert_eq!(CAP_CONTROL & CAP_TRACING, 0);
    }

    #[test]
    fn version_settling_picks_the_highest_shared_version() {
        // (client_min, client_max) -> settled
        let cases = [
            ((2, 2), Some(2)), // pure v2 client
            ((2, 3), Some(3)), // v2/v3 client takes v3
            ((3, 3), Some(3)), // pure v3 client
            ((3, 9), Some(3)), // future client caps at our newest
            ((2, 9), Some(3)), // wide range still settles on v3
            ((1, 2), Some(2)), // old floor, shared ceiling
            ((1, 1), None),    // pure v1 client: below our floor
            ((4, 9), None),    // future-only client: above our ceiling
            ((9, 12), None),   // far future
        ];
        for ((min, max), want) in cases {
            assert_eq!(settle_version(min, max), want, "range ({min},{max})");
        }
        assert_eq!(
            settle_version(PROTOCOL_VERSION, PROTOCOL_VERSION),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn control_frames_reject_malformed_routes_at_the_boundary() {
        // Host bits set: must be refused in decode, never reach the trie.
        let bad_add = Request::RouteAdd(vec![Route {
            prefix: 0x0a00_0001,
            len: 8,
            next_hop: 1,
        }])
        .encode();
        assert!(matches!(
            Request::decode(&bad_add),
            Err(FrameError::Malformed(_))
        ));
        let bad_withdraw = Request::RouteWithdraw(vec![(0x0a00_0001, 8)]).encode();
        assert!(matches!(
            Request::decode(&bad_withdraw),
            Err(FrameError::Malformed(_))
        ));
        // Length out of range.
        let mut long = Request::RouteAdd(vec![Route {
            prefix: 0,
            len: 0,
            next_hop: 1,
        }])
        .encode();
        long[7] = 33; // the route's len byte
        assert!(matches!(
            Request::decode(&long),
            Err(FrameError::Malformed(_))
        ));
        // Count/length mismatch.
        let mut short = Request::RouteAdd(vec![Route {
            prefix: 0,
            len: 0,
            next_hop: 1,
        }])
        .encode();
        short.truncate(short.len() - 1);
        assert!(matches!(
            Request::decode(&short),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn submit_rejects_length_mismatch() {
        let mut bytes = Request::Submit {
            packets: Workload::generate(1, 2, 8).packets,
            options: SubmitOptions::new(),
        }
        .encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            Request::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn framed_io_round_trips_and_detects_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversize_submit_encode_panics_instead_of_truncating() {
        let p = Workload::generate(1, 1, 8).packets[0];
        let _ = Request::Submit {
            packets: vec![p; MAX_SUBMIT_PACKETS + 1],
            options: SubmitOptions::new(),
        }
        .encode();
    }

    #[test]
    fn eof_mid_prefix_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..4 {
            let mut r = &buf[..cut];
            assert_eq!(
                read_frame(&mut r).unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof,
                "peer died {cut} bytes into the prefix"
            );
        }
    }

    #[test]
    fn eof_mid_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    /// Hands out `chunk` bytes per read, interleaving a `WouldBlock`
    /// before every chunk — models a socket read timeout firing mid-frame.
    struct Stutter<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        block_next: bool,
    }

    impl Read for Stutter<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stutter"));
            }
            self.block_next = true;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_without_desync() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first frame, long enough to straddle reads").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut r = Stutter {
            data: &buf,
            pos: 0,
            chunk: 3,
            block_next: true,
        };
        let mut fr = FrameReader::new();
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut saw_midframe_timeout = false;
        while frames.len() < 2 {
            match fr.read(&mut r) {
                Ok(Some(p)) => frames.push(p.to_vec()),
                Ok(None) => panic!("stream closed early"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    saw_midframe_timeout |= fr.progress() > 0;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            saw_midframe_timeout,
            "test must exercise mid-frame timeouts"
        );
        assert_eq!(frames[0], b"first frame, long enough to straddle reads");
        assert_eq!(frames[1], b"second");
        assert_eq!(fr.progress(), 0, "back at a frame boundary");
    }

    /// Serves bytes up to `cut`, then raises exactly one `WouldBlock`,
    /// then serves the rest — a timeout at one chosen byte boundary.
    struct SplitReader<'a> {
        data: &'a [u8],
        pos: usize,
        cut: usize,
        blocked: bool,
    }

    impl Read for SplitReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.cut && !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "split"));
            }
            let end = if self.pos < self.cut {
                self.cut
            } else {
                self.data.len()
            };
            let n = buf.len().min(end - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_after_a_timeout_at_every_byte_boundary() {
        // One submit frame exercising every wire region — length prefix,
        // type byte, flags, 8-byte span id, count, packed packet headers —
        // with a timeout injected at each byte boundary in turn. The
        // resumed decode must match the uninterrupted one exactly.
        let w = Workload::generate(4, 3, 8);
        let options = SubmitOptions::new()
            .verify(true)
            .span(0x0123_4567_89AB_CDEF);
        let mut payload = Vec::new();
        encode_submit_into(&w.packets, options, &mut payload);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            let mut r = SplitReader {
                data: &wire,
                pos: 0,
                cut,
                blocked: false,
            };
            let mut fr = FrameReader::new();
            let got = loop {
                match fr.read(&mut r) {
                    Ok(Some(p)) => break p.to_vec(),
                    Ok(None) => panic!("clean close with cut={cut}"),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        assert_eq!(fr.progress(), cut, "progress preserved at cut={cut}");
                    }
                    Err(e) => panic!("cut={cut}: {e}"),
                }
            };
            assert_eq!(got, payload, "resumed frame bytes at cut={cut}");
            let mut packets = Vec::new();
            let opts = decode_submit_into(&got, &mut packets).expect("decodes");
            assert_eq!(opts, options, "cut={cut}");
            assert_eq!(packets, w.packets, "cut={cut}");
        }
    }

    /// Accepts one byte per write, interleaving a `WouldBlock` before
    /// every byte — a maximally congested nonblocking socket.
    struct TrickleSink {
        out: Vec<u8>,
        block_next: bool,
    }

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "trickle"));
            }
            self.block_next = true;
            self.out.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_resumes_partial_writes_byte_for_byte() {
        // Queue several encoded responses, then drain through a sink that
        // blocks before every single byte. The emitted stream must be
        // byte-identical to the blocking path's write_frame output.
        let rsps = [
            Response::Batch {
                forwarded: 9000,
                dropped: 17,
                mismatches: 0,
            },
            Response::Error("slow down".into()),
            Response::Ok,
            Response::Stats("{\"pending\":true}".into()),
        ];
        let mut want = Vec::new();
        let mut scratch = Vec::new();
        for r in &rsps {
            r.encode_into(&mut scratch);
            write_frame(&mut want, &scratch).unwrap();
        }
        let mut fw = FrameWriter::new();
        for r in &rsps {
            r.encode_into(&mut scratch);
            fw.enqueue(&scratch);
        }
        assert_eq!(fw.pending(), want.len());
        let mut sink = TrickleSink {
            out: Vec::new(),
            block_next: true,
        };
        let mut stalls = 0;
        loop {
            match fw.write(&mut sink) {
                Ok(true) => break,
                Ok(false) => stalls += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(stalls, want.len(), "one WouldBlock per byte");
        assert_eq!(sink.out, want, "nonblocking egress matches write_frame");
        assert!(fw.is_empty());
        assert_eq!(fw.high_water(), want.len());
    }

    /// Accepts at most `cap` bytes total, then `WouldBlock`s forever.
    struct CappedSink {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for CappedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.out.len() == self.cap {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap - self.out.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_compacts_mid_frame_and_tracks_high_water() {
        // Stall a frame mid-payload, enqueue another behind it, then let
        // the sink drain: frame boundaries survive the compaction and the
        // high-water mark records the worst pending byte count.
        let a = b"aaaaaaaaaaaaaaaa"; // 16 + 4 prefix = 20 wire bytes
        let b = b"bb"; // 2 + 4 prefix = 6 wire bytes
        let mut want = Vec::new();
        write_frame(&mut want, a).unwrap();
        write_frame(&mut want, b).unwrap();

        let mut fw = FrameWriter::new();
        fw.enqueue(a);
        let mut sink = CappedSink {
            out: Vec::new(),
            cap: 7,
        };
        assert!(!fw.write(&mut sink).unwrap(), "sink stalls mid-frame");
        assert_eq!(fw.pending(), 20 - 7);
        fw.enqueue(b); // compacts the unsent 13-byte tail to the front
        assert_eq!(fw.pending(), 13 + 6);
        assert_eq!(fw.high_water(), 20, "worst pending was the full frame A");

        sink.cap = want.len();
        assert!(fw.write(&mut sink).unwrap(), "drains once the sink opens");
        assert_eq!(sink.out, want, "frame boundaries survive compaction");
        assert!(fw.is_empty());
        assert_eq!(fw.high_water(), 20, "high water is a running maximum");
    }

    #[test]
    fn frame_writer_zero_byte_write_is_an_error() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut fw = FrameWriter::new();
        fw.enqueue(b"x");
        assert_eq!(
            fw.write(&mut Dead).unwrap_err().kind(),
            io::ErrorKind::WriteZero
        );
        assert_eq!(fw.pending(), 5, "cursor preserved across the error");
    }
}
