//! Generation-swapped route tables: the RCU core of the live control
//! plane (protocol v3).
//!
//! The paper's thesis is that synchronization should ride on the memory
//! system's visibility guarantees rather than explicit locks, and the
//! control plane applies it to the route tables: shards (readers) never
//! take a lock on the hot path — they load one atomic generation counter
//! per activation loop and keep classifying against their cached
//! `Arc<ShardTables>` until the counter moves. The control worker (the
//! single writer) applies mutations to its private trie, compiles a
//! **fresh** flat classifier, publishes it into the slot the readers are
//! *not* watching, and only then bumps the generation — so a reader
//! observes either the old table or the new one in full, never a torn
//! intermediate state.
//!
//! Retirement mirrors the drain barrier of the 1024-core shared-memory
//! barrier literature: after publishing generation `N`, the worker waits
//! until every shard has acknowledged (stored `gen_seen >= N`) before
//! declaring generations `< N` retired. The acknowledgement is the proof
//! that no shard still holds a reference to an older table when its slot
//! is eventually reused — and the stats frame surfaces the
//! `generation`/`retired` pair so the property is externally auditable.
//!
//! The two slots are `Mutex<Arc<ShardTables>>`, but the mutex is never
//! contended in steady state: readers lock `slots[gen % 2]`, the writer
//! only ever stores into `slots[(gen + 1) % 2]`, and by the time a slot
//! is reused (two generations later) the barrier guarantees every shard
//! has moved past it. The lock is held just long enough to clone an
//! `Arc` — nanoseconds — and exists only to keep the crate `unsafe`-free.

use crate::queue::{ReplyWaker, ShardQueue};
use crate::shard::ShardTables;
use memsync_netapp::fib::Route;
use memsync_netapp::Fib;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A panicking control worker leaves the trie and slots in a valid
    // state (mutations are applied route by route, publishes are whole
    // Arc stores); recover the guard.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// One control-plane mutation, decoded from a v3 frame (or issued by a
/// host-side test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOp {
    /// Insert (or re-target) a batch of routes.
    Add(Vec<Route>),
    /// Withdraw a batch of `(prefix, len)` entries; absent entries are
    /// counted out of `applied` rather than erroring.
    Withdraw(Vec<(u32, u8)>),
    /// Re-target the default route in one frame.
    SwapDefault(u32),
}

/// The typed outcome of one control op: which generation made the
/// mutation visible, the table size after it, and how many of the op's
/// entries actually changed the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlOutcome {
    /// The table generation that carries this mutation.
    pub generation: u64,
    /// Routes in the table after the mutation.
    pub routes: u32,
    /// Entries that took effect (withdraws of absent prefixes don't).
    pub applied: u32,
}

/// The outcome path of one control op: an mpsc sender plus an optional
/// waker, mirroring [`crate::queue::Reply`] so both frontends service
/// control frames the way they service submits — the blocking frontend
/// parks on the receiver, the reactor parks the connection and gets
/// woken.
#[derive(Clone)]
pub struct ControlReply {
    tx: Sender<ControlOutcome>,
    waker: Option<Arc<dyn ReplyWaker>>,
}

impl ControlReply {
    /// A reply with no waker — for frontends that block on the receiver.
    pub fn new(tx: Sender<ControlOutcome>) -> ControlReply {
        ControlReply { tx, waker: None }
    }

    /// A reply that wakes `waker` after delivery and on drop (covering a
    /// control worker that dies with ops queued).
    pub fn with_waker(tx: Sender<ControlOutcome>, waker: Arc<dyn ReplyWaker>) -> ControlReply {
        ControlReply {
            tx,
            waker: Some(waker),
        }
    }

    /// Delivers the outcome, then wakes the frontend. A hung-up receiver
    /// (the connection went away mid-op) is not the worker's problem.
    pub fn send(&self, outcome: ControlOutcome) {
        let _ = self.tx.send(outcome);
        if let Some(w) = &self.waker {
            w.wake();
        }
    }
}

impl Drop for ControlReply {
    fn drop(&mut self) {
        if let Some(w) = &self.waker {
            w.wake();
        }
    }
}

impl fmt::Debug for ControlReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlReply")
            .field("waker", &self.waker.is_some())
            .finish_non_exhaustive()
    }
}

/// One queued control op plus its outcome path.
#[derive(Debug)]
pub struct ControlJob {
    /// The mutation to apply.
    pub op: ControlOp,
    /// Where the outcome goes.
    pub reply: ControlReply,
}

/// What the control worker needs from one shard to run the drain
/// barrier: its queue (to nudge it off the pop condvar) and its
/// generation acknowledgement.
#[derive(Debug, Clone)]
pub struct ShardGate {
    /// The shard's job queue ([`ShardQueue::notify`] wakes a parked
    /// shard so it runs its generation check promptly).
    pub queue: Arc<ShardQueue>,
    /// Highest generation the shard has re-synced its tables to.
    pub gen_seen: Arc<AtomicU64>,
}

/// Result of applying a batch of coalesced control ops.
#[derive(Debug)]
pub struct MutateResult {
    /// The generation the batch published.
    pub generation: u64,
    /// Routes in the table after the batch.
    pub routes: u32,
    /// Per-op applied counts, in op order.
    pub applied: Vec<u32>,
}

/// Swap-latency accounting: total count plus a ring of the most recent
/// samples (microseconds) for the percentile summary.
#[derive(Debug, Default)]
struct SwapLatency {
    count: u64,
    samples: Vec<u64>,
}

/// Summary of recent swap latencies, rendered into the stats `fib`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapLatencySummary {
    /// Swaps measured since the server started.
    pub count: u64,
    /// Median over the recent-sample ring, microseconds.
    pub p50: u64,
    /// 99th percentile over the recent-sample ring, microseconds.
    pub p99: u64,
    /// Maximum over the recent-sample ring, microseconds.
    pub max: u64,
}

const LATENCY_RING: usize = 1024;

/// The generation-swapped table pair every shard reads through.
#[derive(Debug)]
pub struct EpochTables {
    /// Current generation; starts at 1 (the boot table).
    generation: AtomicU64,
    /// Two-slot publication scheme: the table for generation `g` lives
    /// in `slots[g % 2]`; the writer only ever stores into the slot the
    /// *next* generation will occupy.
    slots: [Mutex<Arc<ShardTables>>; 2],
    /// Routes in the current table (stats reads without locking).
    routes: AtomicU64,
    /// Swaps published so far (`generation - 1` in steady state).
    swaps: AtomicU64,
    /// Highest generation proven drained: every shard acknowledged a
    /// newer one, so no reader references it or anything older.
    retired: AtomicU64,
    /// The single writer's private trie — the authoritative mutable
    /// route set every published table is compiled from.
    writer: Mutex<Fib>,
    latency: Mutex<SwapLatency>,
}

impl EpochTables {
    /// Wraps the boot table as generation 1.
    pub fn new(initial: ShardTables) -> EpochTables {
        let routes = initial.fib.len() as u64;
        let writer = fib_from_routes(&initial.fib.routes());
        let arc = Arc::new(initial);
        EpochTables {
            generation: AtomicU64::new(1),
            slots: [Mutex::new(Arc::clone(&arc)), Mutex::new(arc)],
            routes: AtomicU64::new(routes),
            swaps: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            writer: Mutex::new(writer),
            latency: Mutex::new(SwapLatency::default()),
        }
    }

    /// The current generation. One relaxed-ordering-free atomic load —
    /// this is the only thing the shard hot loop touches per iteration.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current `(generation, tables)` pair. The slot lock is held
    /// only to clone the `Arc`; the writer never stores into the slot a
    /// current-generation reader is looking at (see the module docs), so
    /// the lock is uncontended in steady state.
    pub fn current(&self) -> (u64, Arc<ShardTables>) {
        let gen = self.generation.load(Ordering::Acquire);
        let tables = Arc::clone(&unpoison(self.slots[(gen & 1) as usize].lock()));
        (gen, tables)
    }

    /// Routes in the current table.
    pub fn routes(&self) -> u64 {
        self.routes.load(Ordering::Relaxed)
    }

    /// Swaps published so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Highest generation proven drained by the barrier.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Applies a batch of ops to the writer trie, compiles a fresh
    /// table, and publishes it as the next generation. One rebuild and
    /// one swap cover the whole batch — that coalescing is what makes
    /// 1k routes/sec of churn affordable when a single `Dir24_8` build
    /// fills 16M `tbl24` slots.
    pub fn mutate<'a, I>(&self, ops: I) -> MutateResult
    where
        I: IntoIterator<Item = &'a ControlOp>,
    {
        // The writer lock is held across the publish so concurrent
        // mutators (host tests; the server has a single worker) serialize
        // whole batches and generation numbers stay dense.
        let mut fib = unpoison(self.writer.lock());
        let mut applied = Vec::new();
        for op in ops {
            let n = match op {
                ControlOp::Add(routes) => {
                    for r in routes {
                        fib.insert(*r);
                    }
                    routes.len() as u32
                }
                ControlOp::Withdraw(prefixes) => prefixes
                    .iter()
                    .filter(|(prefix, len)| fib.remove(*prefix, *len).is_some())
                    .count() as u32,
                ControlOp::SwapDefault(next_hop) => {
                    fib.insert(Route {
                        prefix: 0,
                        len: 0,
                        next_hop: *next_hop,
                    });
                    1
                }
            };
            applied.push(n);
        }
        let routes = fib.routes();
        let fresh = ShardTables::from_routes(&routes);
        let gen = self.generation.load(Ordering::Relaxed) + 1;
        // Publish into the slot current-generation readers are not
        // watching, then bump the generation: readers following the
        // counter can only ever see a complete table.
        *unpoison(self.slots[(gen & 1) as usize].lock()) = Arc::new(fresh);
        self.routes.store(routes.len() as u64, Ordering::Relaxed);
        self.generation.store(gen, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        MutateResult {
            generation: gen,
            routes: routes.len() as u32,
            applied,
        }
    }

    /// Marks every generation `<= gen` retired (monotonic).
    pub fn retire_up_to(&self, gen: u64) {
        self.retired.fetch_max(gen, Ordering::AcqRel);
    }

    /// Records one swap's publish-to-barrier latency.
    pub fn record_swap_latency(&self, micros: u64) {
        let mut l = unpoison(self.latency.lock());
        if l.samples.len() == LATENCY_RING {
            let at = (l.count as usize) % LATENCY_RING;
            l.samples[at] = micros;
        } else {
            l.samples.push(micros);
        }
        l.count += 1;
    }

    /// Percentiles over the recent swap-latency ring; `None` before the
    /// first swap completes.
    pub fn swap_latency_summary(&self) -> Option<SwapLatencySummary> {
        let l = unpoison(self.latency.lock());
        if l.samples.is_empty() {
            return None;
        }
        let mut sorted = l.samples.clone();
        sorted.sort_unstable();
        let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        Some(SwapLatencySummary {
            count: l.count,
            p50: pick(0.50),
            p99: pick(0.99),
            max: *sorted.last().expect("nonempty"),
        })
    }
}

fn fib_from_routes(routes: &[Route]) -> Fib {
    let mut fib = Fib::new();
    for r in routes {
        fib.insert(*r);
    }
    fib
}

/// How long the worker waits for every shard to acknowledge a new
/// generation before giving up on retiring the old one (a shard may be
/// mid-restart; its replacement syncs on spawn, so retirement only
/// lags — it is never wrong).
pub const BARRIER_DEADLINE: Duration = Duration::from_millis(250);

/// Most ops folded into one rebuild+swap.
const COALESCE_MAX: usize = 64;

/// Waits until every shard's `gen_seen` reaches `gen`, nudging parked
/// shards off their pop condvars. Returns whether the barrier completed
/// inside `deadline`.
pub fn await_generation(gates: &[ShardGate], gen: u64, deadline: Duration) -> bool {
    let start = Instant::now();
    loop {
        for g in gates {
            g.queue.notify();
        }
        if gates
            .iter()
            .all(|g| g.gen_seen.load(Ordering::Acquire) >= gen)
        {
            return true;
        }
        if start.elapsed() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// A clonable handle for enqueueing control ops on the worker.
#[derive(Debug, Clone)]
pub struct ControlHandle {
    tx: Sender<ControlJob>,
    /// The table structure itself — stats and shard spawns read through
    /// this.
    pub tables: Arc<EpochTables>,
}

impl ControlHandle {
    /// Enqueues one op; `false` means the worker is gone (shutdown).
    pub fn submit(&self, op: ControlOp, reply: ControlReply) -> bool {
        self.tx.send(ControlJob { op, reply }).is_ok()
    }
}

/// Spawns the control worker: a single thread that drains queued ops,
/// folds them into one rebuild+publish, runs the shard drain barrier,
/// and replies. Returns the submit handle and the join handle.
pub fn spawn_control_worker(
    tables: Arc<EpochTables>,
    gates: Vec<ShardGate>,
    stop: Arc<AtomicBool>,
) -> (ControlHandle, JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = ControlHandle {
        tx,
        tables: Arc::clone(&tables),
    };
    let thread = std::thread::Builder::new()
        .name("memsync-control".into())
        .spawn(move || control_worker(&tables, &gates, &rx, &stop))
        .expect("control thread spawns");
    (handle, thread)
}

fn control_worker(
    tables: &EpochTables,
    gates: &[ShardGate],
    rx: &Receiver<ControlJob>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Acquire) {
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let started = Instant::now();
        let mut jobs = vec![first];
        while jobs.len() < COALESCE_MAX {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let result = tables.mutate(jobs.iter().map(|j| &j.op));
        // The drain barrier: the previous generation is retired only
        // once every shard acknowledges the new one. On deadline (a
        // shard mid-restart) retirement lags until the next swap — the
        // stats pair generation/retired makes the lag observable.
        if await_generation(gates, result.generation, BARRIER_DEADLINE) {
            tables.retire_up_to(result.generation - 1);
        }
        tables.record_swap_latency(started.elapsed().as_micros() as u64);
        for (job, applied) in jobs.into_iter().zip(result.applied) {
            job.reply.send(ControlOutcome {
                generation: result.generation,
                routes: result.routes,
                applied,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn route(prefix: u32, len: u8, next_hop: u32) -> Route {
        Route {
            prefix,
            len,
            next_hop,
        }
    }

    #[test]
    fn publish_bumps_the_generation_and_readers_see_whole_tables() {
        let epoch = EpochTables::new(ShardTables::from_routes(&[route(0, 0, 7)]));
        let (gen, t) = epoch.current();
        assert_eq!(gen, 1);
        assert_eq!(t.dir.lookup(0x0a00_0001), Some(7));
        let r = epoch.mutate(&[ControlOp::Add(vec![route(0x0a00_0000, 8, 42)])]);
        assert_eq!(r.generation, 2);
        assert_eq!(r.routes, 2);
        assert_eq!(r.applied, [1]);
        // The old Arc keeps serving the old world; current() sees the new.
        assert_eq!(t.dir.lookup(0x0a00_0001), Some(7));
        let (gen2, t2) = epoch.current();
        assert_eq!(gen2, 2);
        assert_eq!(t2.dir.lookup(0x0a00_0001), Some(42));
        assert_eq!(t2.fib.lookup(0x0a00_0001), Some(42), "trie rides along");
        assert_eq!(epoch.swaps(), 1);
        assert_eq!(epoch.routes(), 2);
    }

    #[test]
    fn withdraw_counts_only_entries_that_existed() {
        let epoch = EpochTables::new(ShardTables::from_routes(&[
            route(0, 0, 7),
            route(0x0a00_0000, 8, 42),
        ]));
        let r = epoch.mutate(&[ControlOp::Withdraw(vec![
            (0x0a00_0000, 8),
            (0xdead_0000, 16), // never inserted
        ])]);
        assert_eq!(r.applied, [1], "absent withdraw does not count");
        assert_eq!(r.routes, 1);
        let (_, t) = epoch.current();
        assert_eq!(t.dir.lookup(0x0a00_0001), Some(7), "default shows through");
    }

    #[test]
    fn swap_default_retargets_in_one_op() {
        let epoch = EpochTables::new(ShardTables::from_routes(&[route(0, 0, 7)]));
        let r = epoch.mutate(&[ControlOp::SwapDefault(99)]);
        assert_eq!(r.applied, [1]);
        assert_eq!(r.routes, 1, "replaces, not adds");
        let (_, t) = epoch.current();
        assert_eq!(t.dir.lookup(0x1234_5678), Some(99));
    }

    #[test]
    fn coalesced_batches_apply_in_op_order_under_one_swap() {
        let epoch = EpochTables::new(ShardTables::from_routes(&[]));
        let ops = [
            ControlOp::Add(vec![route(0x0a00_0000, 8, 1)]),
            ControlOp::Add(vec![route(0x0a00_0000, 8, 2)]), // re-target wins
            ControlOp::Withdraw(vec![(0x0a00_0000, 8)]),
            ControlOp::Add(vec![route(0x0a00_0000, 8, 3)]),
        ];
        let r = epoch.mutate(&ops);
        assert_eq!(r.generation, 2, "one swap for the whole batch");
        assert_eq!(r.applied, [1, 1, 1, 1]);
        let (_, t) = epoch.current();
        assert_eq!(t.dir.lookup(0x0a00_0001), Some(3));
    }

    #[test]
    fn barrier_retires_only_after_every_shard_acks() {
        let gates: Vec<ShardGate> = (0..3)
            .map(|_| ShardGate {
                queue: Arc::new(ShardQueue::new(4)),
                gen_seen: Arc::new(AtomicU64::new(1)),
            })
            .collect();
        assert!(!await_generation(&gates, 2, Duration::from_millis(10)));
        gates[0].gen_seen.store(2, Ordering::Release);
        gates[1].gen_seen.store(2, Ordering::Release);
        assert!(
            !await_generation(&gates, 2, Duration::from_millis(10)),
            "one laggard holds the barrier"
        );
        gates[2].gen_seen.store(2, Ordering::Release);
        assert!(await_generation(&gates, 2, Duration::from_millis(100)));
    }

    #[test]
    fn control_worker_round_trips_ops_and_retires_generations() {
        let epoch = Arc::new(EpochTables::new(ShardTables::from_routes(&[route(
            0, 0, 7,
        )])));
        // A fake "shard": echo every generation straight into gen_seen so
        // the barrier completes.
        let gate = ShardGate {
            queue: Arc::new(ShardQueue::new(4)),
            gen_seen: Arc::new(AtomicU64::new(1)),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let echo_stop = Arc::clone(&stop);
        let echo_tables = Arc::clone(&epoch);
        let echo_seen = Arc::clone(&gate.gen_seen);
        let echo = std::thread::spawn(move || {
            while !echo_stop.load(Ordering::Acquire) {
                echo_seen.store(echo_tables.generation(), Ordering::Release);
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        let (handle, worker) =
            spawn_control_worker(Arc::clone(&epoch), vec![gate], Arc::clone(&stop));
        let (tx, rx) = channel();
        assert!(handle.submit(
            ControlOp::Add(vec![route(0x0a00_0000, 8, 5)]),
            ControlReply::new(tx),
        ));
        let out = rx.recv_timeout(Duration::from_secs(5)).expect("outcome");
        assert_eq!(out.generation, 2);
        assert_eq!(out.routes, 2);
        assert_eq!(out.applied, 1);
        assert_eq!(epoch.retired(), 1, "boot generation retired post-barrier");
        let summary = epoch.swap_latency_summary().expect("one swap measured");
        assert_eq!(summary.count, 1);
        stop.store(true, Ordering::Release);
        worker.join().unwrap();
        echo.join().unwrap();
    }

    #[test]
    fn latency_ring_survives_overflow() {
        let epoch = EpochTables::new(ShardTables::from_routes(&[]));
        for i in 0..(LATENCY_RING as u64 + 10) {
            epoch.record_swap_latency(i);
        }
        let s = epoch.swap_latency_summary().unwrap();
        assert_eq!(s.count, LATENCY_RING as u64 + 10);
        assert_eq!(s.max, LATENCY_RING as u64 + 9, "newest sample retained");
        assert!(s.p50 <= s.p99 && s.p99 <= s.max);
    }
}
