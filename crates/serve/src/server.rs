//! The TCP front end: accept loop, per-connection acceptor threads,
//! drain/shutdown choreography.
//!
//! Each connection gets its own acceptor thread speaking the frame
//! protocol with read/write deadlines. The first frame on a connection
//! must be a [`Request::Hello`]: the server settles the protocol version
//! and answers with its capability block ([`crate::frame::ServerHello`]);
//! any other first frame — including a v1 client's bare submit — gets a
//! typed error and a clean close, never a frame desync. Submits are split
//! by flow hash and enqueued all-or-nothing ([`Router::submit`]); a full
//! shard queue turns into an immediate `Busy` response — the service
//! never buffers beyond the bounded queues. Drain flips a flag (new
//! submits refused), waits for every shard to go quiescent, and answers
//! `Drained`; shutdown drains, stops the shard fleet and the accept loop,
//! and unblocks [`Server::wait`] so the `serve` bin can exit 0.

use crate::backend;
use crate::frame::{
    decode_submit_into, is_submit, settle_version, write_frame, FrameError, FrameReader, Request,
    Response, ServerHello, SubmitOptions, CAP_CONTROL, CAP_TRACING, PROTOCOL_MIN_SUPPORTED,
    PROTOCOL_VERSION,
};
use crate::queue::Reply;
use crate::router::{Router, ShardSplitter};
use crate::shard::ShardTables;
use crate::stats::{stats_json, FrontendStats, ServerCounters};
use crate::supervisor::{Supervisor, SupervisorHandle};
use crate::tables::{
    spawn_control_worker, ControlHandle, ControlOp, ControlReply, EpochTables, ShardGate,
};
use crate::tracing::{PendingSpan, ServeTracer};
use crate::{FrontendKind, ServeConfig};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared state every frontend (acceptor thread or reactor) sees.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) router: Router,
    pub(crate) supervisor: SupervisorHandle,
    pub(crate) counters: ServerCounters,
    pub(crate) config: ServeConfig,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) draining: AtomicBool,
    pub(crate) started: Instant,
    pub(crate) tracer: ServeTracer,
    pub(crate) frontend: FrontendStats,
    pub(crate) control: ControlHandle,
}

/// A running service instance.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

/// Granularity of the accept/read polling loops: short enough that stop
/// and drain flags are observed promptly, long enough to stay cheap.
pub(crate) const POLL: Duration = Duration::from_millis(50);

/// First pause after an fd-exhaustion accept failure; doubles up to
/// [`ACCEPT_BACKOFF_MAX`] while the condition persists.
pub(crate) const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Longest fd-exhaustion accept pause.
pub(crate) const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Whether an accept failure means the process (`EMFILE`) or system
/// (`ENFILE`) is out of file descriptors. Retrying immediately cannot
/// succeed — the accept loop must pause and let connections close.
pub(crate) fn is_fd_exhaustion(e: &io::Error) -> bool {
    #[cfg(unix)]
    {
        matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
    }
    #[cfg(not(unix))]
    {
        let _ = e;
        false
    }
}

/// Tells an over-cap client why it is being dropped: a best-effort
/// blocking write of the `Error` response frame (decodable by every
/// protocol version — `RSP_ERROR` has existed since v1) before close,
/// so the peer sees a reason instead of a bare RST.
pub(crate) fn reject_over_capacity(stream: TcpStream, shared: &Shared) {
    shared.frontend.conn_rejects.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut payload = Vec::new();
    Response::Error(format!(
        "connection limit reached ({} open); retry later",
        shared.config.max_conns
    ))
    .encode_into(&mut payload);
    let mut stream = stream;
    let _ = write_frame(&mut stream, &payload);
}

/// Decrements the open-connection gauge when a connection ends, however
/// it ends (including an acceptor thread unwinding).
pub(crate) struct ConnGuard(pub(crate) Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.frontend.conn_closed();
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the shard
    /// fleet, the supervisor, and the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and span-export file creation failures.
    pub fn start(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        assert!(config.shards > 0, "at least one shard");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let tracer = ServeTracer::new(config.tracing.clone(), config.shards)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tables = Arc::new(EpochTables::new(ShardTables::build(config.routes)));
        let supervisor = Supervisor::start(&config, Arc::clone(&stop), Arc::clone(&tables))
            .monitor_in_background();
        let router = Router::new(
            supervisor
                .shards()
                .iter()
                .map(|s| Arc::clone(&s.queue))
                .collect(),
        );
        // The control worker's drain barrier watches every shard's
        // generation acknowledgement through these gates. The queue Arcs
        // and gen_seen Arcs survive shard restarts, so the gates stay
        // valid for the server's lifetime.
        let gates: Vec<ShardGate> = supervisor
            .shards()
            .iter()
            .map(|s| ShardGate {
                queue: Arc::clone(&s.queue),
                gen_seen: Arc::clone(&s.gen_seen),
            })
            .collect();
        let (control, control_thread) = spawn_control_worker(tables, gates, Arc::clone(&stop));
        let frontend = config.frontend;
        let shared = Arc::new(Shared {
            router,
            supervisor,
            counters: ServerCounters::default(),
            config,
            stop: Arc::clone(&stop),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            tracer,
            frontend: FrontendStats::default(),
            control,
        });
        let mut threads = match frontend {
            FrontendKind::Threads => {
                let accept_shared = Arc::clone(&shared);
                vec![std::thread::Builder::new()
                    .name("memsync-accept".into())
                    .spawn(move || accept_loop(&listener, &accept_shared))
                    .expect("accept thread spawns")]
            }
            FrontendKind::Reactor => {
                #[cfg(unix)]
                {
                    crate::reactor::spawn(listener, Arc::clone(&shared))?
                }
                #[cfg(not(unix))]
                {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the reactor frontend requires a unix platform",
                    ));
                }
            }
        };
        threads.push(control_thread);
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Total shard restarts so far.
    pub fn shard_restarts(&self) -> u64 {
        self.shared.supervisor.restarts()
    }

    /// Whether a shutdown has been requested (frame or [`Server::stop`]).
    pub fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Blocks until the service shuts down (via a shutdown frame or
    /// [`Server::stop`]), then joins every thread.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Requests shutdown from the host process (equivalent to a shutdown
    /// frame, minus the drain).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.tracer.flush();
    }

    /// The request tracer (span rings, live stage histograms). Always
    /// present; disabled unless [`crate::TracingConfig::enabled`] was set.
    pub fn tracer(&self) -> &ServeTracer {
        &self.shared.tracer
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                if shared.frontend.conns_open.load(Ordering::Relaxed)
                    >= shared.config.max_conns as u64
                {
                    reject_over_capacity(stream, shared);
                    continue;
                }
                shared.frontend.conn_opened();
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("memsync-conn".into())
                    .spawn(move || {
                        let _guard = ConnGuard(Arc::clone(&conn_shared));
                        let _ = serve_connection(stream, &conn_shared);
                    });
                match spawned {
                    Ok(h) => {
                        conns.push(h);
                        conns.retain(|c| !c.is_finished());
                    }
                    Err(_) => {
                        // Thread exhaustion behaves like fd exhaustion:
                        // undo the gauge (the closure never ran, so no
                        // guard exists) and back off.
                        shared.frontend.conn_closed();
                        shared
                            .frontend
                            .accept_pauses
                            .fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if is_fd_exhaustion(&e) => {
                // Hot-spinning on EMFILE burns the CPU the open
                // connections need to finish (and free fds). Pause with
                // exponential backoff instead.
                shared
                    .frontend
                    .accept_pauses
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    // The supervisor joins the shard fleet once the stop flag is up.
    // (SupervisorHandle::join consumes; the Arc keeps it alive here, so
    // just give the monitor a beat to wind down its threads.)
}

/// Handles one connection until EOF, deadline expiry, or service stop.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    // Short socket timeouts + an idle budget: reads poll so the stop flag
    // is honored, but a silent peer is dropped once the configured read
    // deadline accumulates.
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    // Request/response over small frames: Nagle only adds latency here
    // (the client side disables it too).
    stream.set_nodelay(true)?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    // The decoder keeps partial-frame state across read timeouts, so the
    // POLL-sized socket timeout never discards bytes of an in-flight
    // frame — a client that pauses mid-frame resumes cleanly.
    let mut frames = FrameReader::new();
    // Per-connection scratch, reused across requests: the decoded submit
    // packets, the submit splitter (per-shard group buffers), and the
    // response encode buffer. Steady state serves a stream of batches
    // with no per-request allocation in any of them.
    let mut packets: Vec<memsync_netapp::Ipv4Packet> = Vec::new();
    let mut splitter = ShardSplitter::new(shared.router.shards());
    let mut encoded = Vec::new();
    let mut idle = Duration::ZERO;
    let mut last_progress = 0usize;
    // Protocol v2+: nothing but Hello is served until the handshake
    // settles a version. The settled version also gates the v3 control
    // frames — a v2 client never reaches the control plane.
    let mut settled: Option<u16> = None;
    // StatsStream state: while `Some`, the poll branch below pushes a
    // snapshot every interval. Any subsequent client frame ends the
    // stream (and is served normally).
    let mut stream_every: Option<Duration> = None;
    let mut last_push = Instant::now();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match frames.read(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean close
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The read deadline budgets *stalls*: any frame progress
                // since the last timeout resets it, so only a peer that
                // is idle (or frozen mid-frame) for the full deadline is
                // dropped — and dropping closes the connection, never
                // resyncing mid-stream.
                if frames.progress() != last_progress {
                    last_progress = frames.progress();
                    idle = Duration::ZERO;
                }
                if let Some(every) = stream_every {
                    // A streaming subscriber is deliberately quiet; the
                    // pushes are the liveness signal, so the idle budget
                    // does not accumulate (a dead peer still surfaces —
                    // as a write error on the next push).
                    idle = Duration::ZERO;
                    if last_push.elapsed() >= every {
                        Response::StatsPush(render_stats(shared)).encode_into(&mut encoded);
                        write_frame(&mut writer, &encoded)?;
                        last_push = Instant::now();
                    }
                } else {
                    idle += POLL;
                    if idle >= shared.config.read_timeout {
                        return Ok(()); // read deadline: drop the stalled peer
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        idle = Duration::ZERO;
        last_progress = 0;
        // Any complete client frame terminates an active stats stream;
        // the StatsStream arm below re-arms it for a fresh subscription.
        stream_every = None;
        let trace = shared.tracer.enabled();
        let decode_started = trace.then(Instant::now);
        // Submit fast path: decode the batch straight into the
        // connection's packet scratch. Going through `Request::decode`
        // would build a fresh `Vec<Ipv4Packet>` per batch — at large
        // batch sizes that is an mmap/munmap round trip per request.
        if settled.is_some() && is_submit(payload) {
            let (response, pending) = match decode_submit_into(payload, &mut packets) {
                Ok(options) => {
                    let decode_ns = decode_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    handle_submit(&packets, options, shared, &mut splitter, decode_ns)
                }
                Err(e) => (Response::Error(e.to_string()), None),
            };
            let write_started = pending.as_ref().map(|_| Instant::now());
            response.encode_into(&mut encoded);
            write_frame(&mut writer, &encoded)?;
            if let Some(p) = pending {
                let write_ns = write_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                shared.tracer.finish(&p, write_ns);
            }
            continue;
        }
        let (response, action, pending) = match Request::decode(payload) {
            Ok(Request::Hello {
                min_version,
                max_version,
            }) => {
                // Idempotent: a repeated Hello after greeting just
                // re-settles and re-states the capability block.
                if let Some(version) = settle_version(min_version, max_version) {
                    settled = Some(version);
                    (
                        Response::Hello(server_hello(shared, version)),
                        Action::Continue,
                        None,
                    )
                } else {
                    (
                        Response::Error(format!(
                            "no common protocol version: client speaks \
                             {min_version}..={max_version}, server speaks \
                             {PROTOCOL_MIN_SUPPORTED}..={PROTOCOL_VERSION}"
                        )),
                        Action::Close,
                        None,
                    )
                }
            }
            Ok(req) if settled.is_none() => (
                // A pre-handshake request means the peer does not speak
                // protocol v2 (or skipped the handshake). RSP_ERROR has
                // existed since v1, so even an old client decodes this
                // cleanly; closing keeps the stream at a frame boundary.
                Response::Error(format!(
                    "expected hello before {}: this server speaks protocol \
                     v{PROTOCOL_VERSION}, which negotiates at connect time",
                    req.name()
                )),
                Action::Close,
                None,
            ),
            Ok(Request::StatsStream { interval_ms }) => {
                if interval_ms == 0 {
                    (
                        Response::Error("stats-stream interval must be nonzero".into()),
                        Action::Continue,
                        None,
                    )
                } else {
                    stream_every = Some(Duration::from_millis(u64::from(interval_ms)));
                    last_push = Instant::now();
                    // First push rides the response immediately; the
                    // cadence continues from the poll branch above.
                    (
                        Response::StatsPush(render_stats(shared)),
                        Action::Continue,
                        None,
                    )
                }
            }
            Ok(req) => {
                let action = if matches!(req, Request::Shutdown) {
                    Action::Shutdown
                } else {
                    Action::Continue
                };
                let decode_ns = decode_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                let version = settled.unwrap_or(PROTOCOL_MIN_SUPPORTED);
                let (response, pending) =
                    handle_request(req, version, shared, &mut splitter, decode_ns);
                (response, action, pending)
            }
            Err(e @ (FrameError::Malformed(_) | FrameError::BadPacket(_))) => {
                (Response::Error(e.to_string()), Action::Continue, None)
            }
        };
        let write_started = pending.as_ref().map(|_| Instant::now());
        response.encode_into(&mut encoded);
        write_frame(&mut writer, &encoded)?;
        if let Some(p) = pending {
            let write_ns = write_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            shared.tracer.finish(&p, write_ns);
        }
        match action {
            Action::Continue => {}
            Action::Close => return Ok(()),
            Action::Shutdown => {
                shared.stop.store(true, Ordering::Release);
                return Ok(());
            }
        }
    }
}

/// What a connection does after answering a frame.
enum Action {
    Continue,
    Close,
    Shutdown,
}

pub(crate) fn server_hello(shared: &Shared, version: u16) -> ServerHello {
    ServerHello {
        // The settled version for *this* connection — a v2 client reads
        // back v2 and never sends control frames.
        version,
        // Tracing (span-tagged submits, StatsStream) and the live
        // control plane are protocol capabilities of this server build,
        // advertised alongside the backend bits.
        capabilities: backend::capability_bits() | CAP_TRACING | CAP_CONTROL,
        backend: shared.config.backend,
        shards: shared.config.shards as u16,
        egress: shared.config.egress as u16,
        routes: shared.config.routes as u32,
    }
}

/// Renders the current stats document (the Stats response and every
/// StatsPush share this, in both frontends).
pub(crate) fn render_stats(shared: &Shared) -> String {
    stats_json(
        shared.supervisor.shards(),
        &shared.counters,
        shared.config.backend,
        shared.supervisor.restarts(),
        shared.draining.load(Ordering::Acquire),
        shared.started,
        Some(&shared.tracer),
        Some((shared.config.frontend, &shared.frontend)),
        Some(&shared.control.tables),
    )
}

pub(crate) fn handle_request(
    req: Request,
    version: u16,
    shared: &Arc<Shared>,
    splitter: &mut ShardSplitter,
    decode_ns: u64,
) -> (Response, Option<PendingSpan>) {
    match req {
        Request::Hello { .. } => unreachable!("hello handled in the connection loop"),
        Request::StatsStream { .. } => {
            unreachable!("stats-stream handled in the connection loop")
        }
        req if req.is_control() && version < 3 => (
            // The capability was advertised but the *settled* version
            // gates it: a connection negotiated down to v2 must not send
            // v3 frames. RSP_ERROR decodes under every version.
            Response::Error(format!(
                "{} is a protocol-v3 control frame; this connection settled v{version}",
                req.name()
            )),
            None,
        ),
        req if req.is_control() && shared.draining.load(Ordering::Acquire) => (
            Response::Error("draining: control plane refused".into()),
            None,
        ),
        Request::RouteAdd(routes) => handle_control(ControlOp::Add(routes), shared),
        Request::RouteWithdraw(prefixes) => handle_control(ControlOp::Withdraw(prefixes), shared),
        Request::SwapDefault { next_hop } => {
            handle_control(ControlOp::SwapDefault(next_hop), shared)
        }
        Request::Submit { packets, options } => {
            handle_submit(&packets, options, shared, splitter, decode_ns)
        }
        Request::Stats => (Response::Stats(render_stats(shared)), None),
        Request::Drain => {
            shared.draining.store(true, Ordering::Release);
            shared.tracer.flush();
            if wait_quiescent(shared, shared.config.job_timeout) {
                (Response::Drained, None)
            } else {
                (Response::Error("drain timed out".into()), None)
            }
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            wait_quiescent(shared, shared.config.job_timeout);
            shared.tracer.flush();
            (Response::Ok, None)
        }
        Request::Kill(shard) => {
            let Some(s) = shared.supervisor.shards().get(shard as usize) else {
                return (Response::Error(format!("no shard {shard}")), None);
            };
            s.die.store(true, Ordering::Release);
            (Response::Ok, None)
        }
    }
}

/// Submits one control op to the worker and blocks for its outcome (the
/// threads frontend; the reactor parks the connection instead — see
/// `reactor::park_control`). The outcome arrives only after the worker
/// has published the new generation and run the shard drain barrier.
fn handle_control(op: ControlOp, shared: &Arc<Shared>) -> (Response, Option<PendingSpan>) {
    let (tx, rx) = channel();
    if !shared.control.submit(op, ControlReply::new(tx)) {
        return (Response::Error("control plane stopped".into()), None);
    }
    match rx.recv_timeout(shared.config.job_timeout) {
        Ok(out) => (
            Response::RouteUpdated {
                generation: out.generation,
                routes: out.routes,
                applied: out.applied,
            },
            None,
        ),
        Err(RecvTimeoutError::Disconnected) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            (Response::Error("control worker died; retry".into()), None)
        }
        Err(RecvTimeoutError::Timeout) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            (Response::Error("control op timed out".into()), None)
        }
    }
}

fn wait_quiescent(shared: &Arc<Shared>, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if shared.supervisor.quiescent() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.supervisor.quiescent()
}

fn handle_submit(
    packets: &[memsync_netapp::Ipv4Packet],
    options: SubmitOptions,
    shared: &Arc<Shared>,
    splitter: &mut ShardSplitter,
    decode_ns: u64,
) -> (Response, Option<PendingSpan>) {
    if shared.draining.load(Ordering::Acquire) {
        return (
            Response::Error("draining: new submits refused".into()),
            None,
        );
    }
    if packets.is_empty() {
        return (
            Response::Batch {
                forwarded: 0,
                dropped: 0,
                mismatches: 0,
            },
            None,
        );
    }
    // When tracing is off the span id a client may have tagged is simply
    // ignored — the shard produced no timings, so there is no span to
    // build and nothing to allocate.
    let mut pending = if shared.tracer.enabled() {
        let (span_id, client_assigned) = shared.tracer.assign(options.span_id);
        Some(PendingSpan {
            span_id,
            client_assigned,
            decode_ns,
            timings: Vec::new(),
        })
    } else {
        None
    };
    let (tx, rx) = channel();
    let tx = Reply::new(tx);
    let jobs = match shared.router.submit(splitter, packets, options, &tx) {
        Ok(n) => n,
        Err(shard) => {
            shared.counters.busy.fetch_add(1, Ordering::Relaxed);
            return (Response::Busy(shard), None);
        }
    };
    drop(tx); // the shard-held clones are now the only senders
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    let mut forwarded = 0u32;
    let mut dropped = 0u32;
    let mut mismatches = 0u32;
    for _ in 0..jobs {
        match rx.recv_timeout(shared.config.job_timeout) {
            Ok(out) => {
                forwarded += out.forwarded;
                dropped += out.dropped;
                mismatches += out.mismatches;
                if let (Some(p), Some(t)) = (pending.as_mut(), out.timings) {
                    p.timings.push(t);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // A shard died mid-batch; the supervisor is restarting it.
                // The submit is reported failed — the client retries; no
                // silent loss, no double processing of the lost job.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                return (
                    Response::Error("shard failed mid-batch; resubmit".into()),
                    None,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                return (Response::Error("job timed out".into()), None);
            }
        }
    }
    (
        Response::Batch {
            forwarded,
            dropped,
            mismatches,
        },
        pending,
    )
}
