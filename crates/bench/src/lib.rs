//! # memsync-bench — experiment harness
//!
//! One function per table/figure of the paper (see DESIGN.md §4); the
//! binaries in `src/bin/` print the same rows the paper reports, and the
//! integration tests assert the shape criteria. Everything here is driven
//! by the same generators/models the library ships — nothing is hard-coded
//! except the paper's published anchors.

#![warn(missing_docs)]

pub mod sweep;

use memsync_core::{arbitrated, event_driven, spec::WrapperSpec, OptLevel, OrganizationKind};
use memsync_fpga::calibration::PAPER_ANCHORS;
use memsync_fpga::report::{implement, ImplReport};
use memsync_sim::arb_model::{ArbInputs, ArbitratedModel};
use memsync_sim::event_model::{EventDrivenModel, EvtInputs};
use memsync_sim::metrics::LatencyStats;
use memsync_trace::{JsonlSink, MetricsRegistry, NullSink, Pcg32, RecordingSink, TraceSink};

/// The paper's three scenarios: one producer with 2, 4, 8 consumers.
pub const SCENARIOS: [usize; 3] = [2, 4, 8];

/// Looks up the value following `flag` in argv (`--trace out.jsonl`).
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses the `--opt {0,1}` flag (default [`OptLevel::O0`]).
///
/// # Panics
///
/// Panics on an unparseable level, mirroring the other flag helpers.
pub fn opt_arg(args: &[String]) -> OptLevel {
    arg_value(args, "--opt")
        .map(|v| {
            v.parse::<OptLevel>()
                .unwrap_or_else(|e| panic!("--opt: {e}"))
        })
        .unwrap_or(OptLevel::O0)
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Producer/consumer label, e.g. "1/4".
    pub pc: String,
    /// LUT count.
    pub luts: u32,
    /// Flip-flop count.
    pub ffs: u32,
    /// Occupied slices.
    pub slices: u32,
    /// Achieved Fmax in MHz.
    pub fmax_mhz: f64,
}

/// Generates and implements the wrapper for one scenario.
///
/// # Panics
///
/// Panics if generation fails (the scenarios are within spec limits).
pub fn implement_wrapper(kind: OrganizationKind, consumers: usize) -> ImplReport {
    let spec = WrapperSpec::single_producer(consumers);
    let module = match kind {
        OrganizationKind::Arbitrated => arbitrated::generate(&spec),
        OrganizationKind::EventDriven => event_driven::generate(&spec),
    }
    .expect("paper scenarios are valid specs");
    implement(&module).expect("wrappers are loop-free")
}

/// Regenerates Table 1 (arbitrated) or Table 2 (event-driven).
pub fn table_area(kind: OrganizationKind) -> Vec<AreaRow> {
    SCENARIOS
        .iter()
        .map(|&n| {
            let r = implement_wrapper(kind, n);
            AreaRow {
                pc: format!("1/{n}"),
                luts: r.luts,
                ffs: r.ffs,
                slices: r.slices,
                fmax_mhz: r.timing.fmax_mhz,
            }
        })
        .collect()
}

/// The published Fmax anchors for a given organization (MHz, for 2/4/8).
pub fn fmax_anchors(kind: OrganizationKind) -> [f64; 3] {
    match kind {
        OrganizationKind::Arbitrated => PAPER_ANCHORS.arbitrated_fmax_mhz,
        OrganizationKind::EventDriven => PAPER_ANCHORS.event_driven_fmax_mhz,
    }
}

/// Result of the overhead experiment (E5).
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadResult {
    /// Egress consumer count of the application build.
    pub egress: usize,
    /// Core (thread logic) slices.
    pub core_slices: u32,
    /// Synchronization wrapper slices.
    pub sync_slices: u32,
    /// Total slices.
    pub total_slices: u32,
    /// sync / core.
    pub overhead_fraction: f64,
    /// System Fmax in MHz.
    pub fmax_mhz: f64,
}

/// Builds the forwarding application and measures the synchronization
/// overhead relative to the core (paper band: 5–20 %).
///
/// # Panics
///
/// Panics if the generated application fails to compile (a harness bug).
pub fn overhead_experiment(kind: OrganizationKind, egress: usize) -> OverheadResult {
    overhead_experiment_at(kind, egress, OptLevel::O0)
}

/// [`overhead_experiment`] with an explicit middle-end optimization level.
///
/// # Panics
///
/// Panics if the generated application fails to compile (a harness bug).
pub fn overhead_experiment_at(
    kind: OrganizationKind,
    egress: usize,
    opt: OptLevel,
) -> OverheadResult {
    let src = memsync_netapp::forwarding::app_source(egress);
    let mut compiler = memsync_core::Compiler::new(&src);
    compiler.organization(kind).opt(opt).skip_validation();
    let system = compiler.compile().expect("generated app compiles");
    let report = system.implement().expect("implementable");
    OverheadResult {
        egress,
        core_slices: report.core_slices(),
        sync_slices: report.sync_slices(),
        total_slices: report.total_slices(),
        overhead_fraction: report.overhead_fraction(),
        fmax_mhz: report.fmax_mhz(),
    }
}

/// Result of the latency experiment (E6) for one organization/scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyResult {
    /// Consumer count.
    pub consumers: usize,
    /// Pooled statistics over all consumers.
    pub pooled: LatencyStats,
    /// Per-consumer statistics.
    pub per_consumer: Vec<LatencyStats>,
    /// Whether every per-consumer stream was exact (zero variance).
    pub all_deterministic: bool,
}

/// Drives the behavioral wrapper models directly with a Bernoulli-paced
/// producer and `consumers` consumers whose read requests arrive with a
/// small random jitter after each write (consumer threads reach their read
/// states at slightly different times), measuring write-to-data latency.
pub fn latency_experiment(
    kind: OrganizationKind,
    consumers: usize,
    writes: usize,
    seed: u64,
) -> LatencyResult {
    let mut registry = MetricsRegistry::new();
    latency_experiment_traced(kind, consumers, writes, seed, &mut NullSink, &mut registry)
}

/// [`latency_experiment`] with full observability: every grant, stall, and
/// delivery the wrapper model emits goes to `sink`, and `registry`
/// accumulates the counters, grant-wait histograms, and latency streams
/// (use a fresh registry per run — latency streams are keyed by address).
pub fn latency_experiment_traced(
    kind: OrganizationKind,
    consumers: usize,
    writes: usize,
    seed: u64,
    sink: &mut dyn TraceSink,
    registry: &mut MetricsRegistry,
) -> LatencyResult {
    const ADDR: u32 = 4;
    let mut rng = Pcg32::seed_from_u64(seed);
    let max_cycles = (writes as u64 + 16) * 300;

    match kind {
        OrganizationKind::Arbitrated => {
            let mut m = ArbitratedModel::new(1, consumers, 4);
            m.configure(ADDR, consumers as u8).expect("fits the list");
            // want_at[i]: cycle from which consumer i holds its read.
            let mut want_at: Vec<Option<u64>> = vec![None; consumers];
            let mut done_writes = 0usize;
            let mut served = 0usize;
            let mut cycle: u64 = 0;
            while served < writes * consumers && cycle < max_cycles {
                let round_complete = served == done_writes * consumers;
                let fire = done_writes < writes && round_complete && rng.gen_bool(0.25);
                let inp = ArbInputs {
                    c_req: want_at
                        .iter()
                        .map(|w| match w {
                            Some(at) if *at <= cycle => Some(ADDR),
                            _ => None,
                        })
                        .collect(),
                    d_req: vec![if fire {
                        Some((ADDR, done_writes as u32, consumers as u8))
                    } else {
                        None
                    }],
                    a_req: None,
                };
                let out = {
                    let mut tee = RecordingSink {
                        sink: &mut *sink,
                        registry: &mut *registry,
                    };
                    m.step_traced(&inp, 0, &mut tee)
                };
                registry.observe_gauge("bank0.deplist_occupancy", m.deplist().occupancy() as u64);
                if out.d_grant[0] {
                    done_writes += 1;
                    for w in want_at.iter_mut() {
                        // Arrival jitter: each consumer reaches its read
                        // state 0..4 cycles after the write lands.
                        *w = Some(cycle + 1 + rng.gen_range(0..4));
                    }
                }
                for (i, g) in out.c_grant.iter().enumerate() {
                    if *g {
                        want_at[i] = None;
                    }
                }
                if out.c_data.is_some() {
                    served += 1;
                }
                cycle += 1;
            }
        }
        OrganizationKind::EventDriven => {
            let schedule =
                memsync_core::modulo::ModuloSchedule::new(vec![(0..consumers).collect()])
                    .expect("valid schedule");
            let mut m = EventDrivenModel::new(1, consumers, schedule);
            let mut done_writes = 0usize;
            let mut served = 0usize;
            let mut cycle: u64 = 0;
            while served < writes * consumers && cycle < max_cycles {
                let round_complete = served == done_writes * consumers;
                let fire = done_writes < writes && round_complete && rng.gen_bool(0.25);
                let inp = EvtInputs {
                    p_req: vec![if fire {
                        Some((ADDR, done_writes as u32))
                    } else {
                        None
                    }],
                    c_addr: vec![Some(ADDR); consumers],
                    a_req: None,
                };
                let out = {
                    let mut tee = RecordingSink {
                        sink: &mut *sink,
                        registry: &mut *registry,
                    };
                    m.step_traced(&inp, 0, &mut tee)
                };
                if out.p_grant[0] {
                    done_writes += 1;
                }
                if out.c_data.is_some() {
                    served += 1;
                }
                cycle += 1;
            }
        }
    }

    let per_consumer: Vec<LatencyStats> = (0..consumers)
        .filter_map(|c| registry.stats(ADDR, c))
        .collect();
    let pooled = registry.pooled_stats().expect("samples recorded");
    let all_deterministic = per_consumer.iter().all(LatencyStats::is_deterministic);
    LatencyResult {
        consumers,
        pooled,
        per_consumer,
        all_deterministic,
    }
}

/// Builds the uninstrumented reference workload the self-timing harness
/// (`perf` bin) and the perf regression tests measure: the egress-4
/// forwarding application compiled for the arbitrated organization, under
/// Bernoulli rx traffic — the same full-system configuration the overhead
/// experiment simulates, so hot-path regressions in the thread executor,
/// wrapper models, and engine all show up.
pub fn reference_system() -> memsync_sim::System {
    reference_system_at(OptLevel::O0)
}

/// [`reference_system`] compiled at an explicit middle-end level.
///
/// # Panics
///
/// Panics if the generated application fails to compile (a harness bug).
pub fn reference_system_at(opt: OptLevel) -> memsync_sim::System {
    let src = memsync_netapp::forwarding::app_source(4);
    let mut compiler = memsync_core::Compiler::new(&src);
    compiler
        .organization(OrganizationKind::Arbitrated)
        .opt(opt)
        .skip_validation();
    let compiled = compiler.compile().expect("forwarding app compiles");
    let mut sys = memsync_sim::System::new(&compiled);
    sys.attach_source(
        "rx",
        Box::new(memsync_sim::traffic::BernoulliSource::new(7, 0.1)),
    );
    sys
}

/// One cell of the middle-end comparison (the EXPERIMENTS.md "Optimizing
/// middle-end" table): the forwarding application compiled at one
/// [`OptLevel`] under the arbitrated organization, with its aggregate FSM
/// shape and simulated per-packet cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MiddleEndRow {
    /// Egress consumer count of the application build.
    pub egress: usize,
    /// Middle-end level the build ran at.
    pub level: OptLevel,
    /// Total FSM states across all threads.
    pub fsm_states: usize,
    /// Total memory-access states across all threads.
    pub memory_ops: usize,
    /// Total guarded (synchronization) memory states across all threads.
    pub guarded_ops: usize,
    /// Summed per-thread shared-datapath FU count (peak ALU per state).
    pub alu_units: usize,
    /// Memory reads the middle-end replaced with register reuse.
    pub reads_forwarded: usize,
    /// Simulated cycles per packet over a paced 64-packet batch.
    pub cycles_per_packet: f64,
    /// Per-thread middle-end reports, in thread order.
    pub pass_reports: Vec<memsync_core::PassReport>,
}

/// Compiles and simulates the forwarding application for one middle-end
/// comparison cell.
///
/// # Panics
///
/// Panics if the generated application fails to compile or the paced
/// simulation stalls (harness bugs).
pub fn middle_end_row(egress: usize, level: OptLevel) -> MiddleEndRow {
    let src = memsync_netapp::forwarding::app_source(egress);
    let mut compiler = memsync_core::Compiler::new(&src);
    compiler
        .organization(OrganizationKind::Arbitrated)
        .opt(level)
        .skip_validation();
    let compiled = compiler.compile().expect("forwarding app compiles");
    let fsm_states = compiled.fsms.iter().map(|f| f.states.len()).sum();
    let memory_ops = compiled
        .fsms
        .iter()
        .map(memsync_synth::fsm::Fsm::memory_state_count)
        .sum();
    let guarded_ops = compiled
        .fsms
        .iter()
        .map(memsync_synth::fsm::Fsm::guarded_state_count)
        .sum();
    let alu_units = compiled
        .fsms
        .iter()
        .map(|f| memsync_synth::binding::bind(f).alu_units)
        .sum();
    let reads_forwarded = compiled
        .pass_reports
        .iter()
        .map(|r| r.reads_forwarded)
        .sum();

    const PACKETS: usize = 64;
    let mut sys = memsync_sim::System::new(&compiled);
    let ids: Vec<_> = (0..egress)
        .map(|i| sys.thread_id(&format!("e{i}")).expect("egress thread"))
        .collect();
    let descs: Vec<i64> = memsync_netapp::Workload::generate(0xD15C, PACKETS, 64)
        .packets
        .iter()
        .map(|p| i64::from(p.descriptor()))
        .collect();
    assert!(
        sys.submit_paced("rx", &ids, &descs, 0, 2_000),
        "paced simulation stalled at {level}"
    );
    let cycles_per_packet = sys.cycle() as f64 / PACKETS as f64;

    MiddleEndRow {
        egress,
        level,
        fsm_states,
        memory_ops,
        guarded_ops,
        alu_units,
        reads_forwarded,
        cycles_per_packet,
        pass_reports: compiled.pass_reports,
    }
}

/// The (egress × level) grid of the middle-end comparison: forwarding_2
/// and forwarding_4 shapes at both levels.
pub fn middle_end_grid() -> Vec<(usize, OptLevel)> {
    [2usize, 4]
        .iter()
        .flat_map(|&e| [OptLevel::O0, OptLevel::O1].iter().map(move |&l| (e, l)))
        .collect()
}

/// One (organization × consumer-count) cell of the latency sweep, run as
/// an independent unit of work so [`sweep::parallel_map`] can fan the
/// cells across threads.
#[derive(Debug)]
pub struct LatencyRun {
    /// Organization simulated.
    pub kind: OrganizationKind,
    /// Consumer count.
    pub consumers: usize,
    /// Experiment result.
    pub result: LatencyResult,
    /// The run's private metrics registry.
    pub registry: MetricsRegistry,
    /// When trace capture was requested: the run's JSONL bytes (meta
    /// header + every cycle event) and line count, buffered so the caller
    /// can concatenate runs in deterministic config order.
    pub trace: Option<(Vec<u8>, u64)>,
}

/// Runs one latency cell with a private registry and (optionally) a
/// private in-memory trace buffer. Buffering the JSONL bytes per run —
/// instead of streaming into a shared file sink — is what lets the sweep
/// run cells on worker threads while keeping the merged trace file
/// byte-identical to a serial run.
pub fn latency_run(
    kind: OrganizationKind,
    consumers: usize,
    writes: usize,
    seed: u64,
    capture_trace: bool,
) -> LatencyRun {
    let mut registry = MetricsRegistry::new();
    let (result, trace) = if capture_trace {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        sink.write_meta(&format!(
            "{{\"meta\":\"run\",\"org\":\"{kind}\",\"consumers\":{consumers}}}"
        ));
        let result =
            latency_experiment_traced(kind, consumers, writes, seed, &mut sink, &mut registry);
        let lines = sink.lines;
        (result, Some((sink.into_inner(), lines)))
    } else {
        let result =
            latency_experiment_traced(kind, consumers, writes, seed, &mut NullSink, &mut registry);
        (result, None)
    };
    LatencyRun {
        kind,
        consumers,
        result,
        registry,
        trace,
    }
}

/// The (organization × consumer-count) grid both latency bins sweep.
pub fn latency_grid() -> Vec<(OrganizationKind, usize)> {
    [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
        .iter()
        .flat_map(|&k| SCENARIOS.iter().map(move |&n| (k, n)))
        .collect()
}

/// Scalability ablation (E9): the netlist delta of adding one consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Organization measured.
    pub organization: String,
    /// LUT delta going from n to n+1 consumers.
    pub lut_delta: i64,
    /// FF delta.
    pub ff_delta: i64,
    /// Whether the sequential state changed — the paper's criterion for
    /// "no changes need to be made to the thread related state machine(s)".
    pub state_changed: bool,
}

/// Measures what adding a consumer costs for both organizations.
pub fn ablation_scalability(base_consumers: usize) -> Vec<AblationResult> {
    [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
        .iter()
        .map(|&kind| {
            let a = implement_wrapper(kind, base_consumers);
            let b = implement_wrapper(kind, base_consumers + 1);
            AblationResult {
                organization: kind.to_string(),
                lut_delta: i64::from(b.luts) - i64::from(a.luts),
                ff_delta: i64::from(b.ffs) - i64::from(a.ffs),
                state_changed: a.ffs != b.ffs,
            }
        })
        .collect()
}

/// Renders an area table as markdown.
pub fn render_area_table(kind: OrganizationKind, rows: &[AreaRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {kind} memory organization\n\n"));
    out.push_str("| P/C | LUT | FF | Slices | Fmax (MHz) | paper Fmax (MHz) |\n");
    out.push_str("|-----|-----|----|--------|------------|------------------|\n");
    let anchors = fmax_anchors(kind);
    for (row, anchor) in rows.iter().zip(anchors.iter()) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} | {:.0} |\n",
            row.pc, row.luts, row.ffs, row.slices, row.fmax_mhz, anchor
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table_area(OrganizationKind::Arbitrated);
        assert_eq!(rows.len(), 3);
        // FF constant at 66.
        assert!(rows.iter().all(|r| r.ffs == PAPER_ANCHORS.arbitrated_ffs));
        // LUTs and slices strictly increase.
        assert!(rows[0].luts < rows[1].luts && rows[1].luts < rows[2].luts);
        assert!(rows[0].slices < rows[1].slices && rows[1].slices < rows[2].slices);
        // Fmax strictly decreases.
        assert!(rows[0].fmax_mhz > rows[1].fmax_mhz && rows[1].fmax_mhz > rows[2].fmax_mhz);
    }

    #[test]
    fn table2_shape_matches_paper() {
        let rows = table_area(OrganizationKind::EventDriven);
        assert!(rows[0].luts < rows[1].luts && rows[1].luts < rows[2].luts);
        assert!(rows[0].fmax_mhz > rows[1].fmax_mhz && rows[1].fmax_mhz >= rows[2].fmax_mhz);
    }

    #[test]
    fn event_driven_beats_arbitrated_fmax_everywhere() {
        for &n in &SCENARIOS {
            let a = implement_wrapper(OrganizationKind::Arbitrated, n);
            let e = implement_wrapper(OrganizationKind::EventDriven, n);
            assert!(e.timing.fmax_mhz > a.timing.fmax_mhz, "n={n}");
        }
    }

    #[test]
    fn fmax_within_twelve_percent_of_anchors() {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let anchors = fmax_anchors(kind);
            for (i, &n) in SCENARIOS.iter().enumerate() {
                let f = implement_wrapper(kind, n).timing.fmax_mhz;
                let dev = (f - anchors[i]).abs() / anchors[i];
                assert!(
                    dev < 0.12,
                    "{kind} n={n}: {f:.1} vs {} ({:.1}%)",
                    anchors[i],
                    dev * 100.0
                );
            }
        }
    }

    #[test]
    fn overhead_in_paper_band() {
        for &n in &SCENARIOS {
            let r = overhead_experiment(OrganizationKind::Arbitrated, n);
            let (lo, hi) = PAPER_ANCHORS.overhead_band;
            assert!(
                r.overhead_fraction >= lo && r.overhead_fraction <= hi,
                "egress={n}: {:.3} outside [{lo}, {hi}]",
                r.overhead_fraction
            );
        }
    }

    #[test]
    fn latency_event_driven_is_deterministic() {
        for &n in &SCENARIOS {
            let r = latency_experiment(OrganizationKind::EventDriven, n, 50, 42);
            assert!(r.all_deterministic, "n={n}: {r:?}");
            assert_eq!(r.per_consumer.len(), n);
        }
    }

    #[test]
    fn latency_arbitrated_varies_and_grows_with_consumers() {
        let r2 = latency_experiment(OrganizationKind::Arbitrated, 2, 60, 7);
        let r8 = latency_experiment(OrganizationKind::Arbitrated, 8, 60, 7);
        assert!(
            r2.pooled.max > r2.pooled.min,
            "spread expected: {:?}",
            r2.pooled
        );
        assert!(
            r8.pooled.max > r2.pooled.max,
            "worst case grows with consumers: {:?} vs {:?}",
            r8.pooled,
            r2.pooled
        );
    }

    #[test]
    fn ablation_arbitrated_keeps_state_constant() {
        let results = ablation_scalability(4);
        let arb = &results[0];
        assert_eq!(arb.organization, "arbitrated");
        assert!(!arb.state_changed, "adding a consumer must not change FFs");
        assert!(arb.lut_delta > 0);
    }

    #[test]
    fn middle_end_o1_shrinks_forwarding_4() {
        let o0 = middle_end_row(4, OptLevel::O0);
        let o1 = middle_end_row(4, OptLevel::O1);
        assert!(
            o1.fsm_states < o0.fsm_states,
            "O1 states {} !< O0 states {}",
            o1.fsm_states,
            o0.fsm_states
        );
        assert!(
            o1.guarded_ops < o0.guarded_ops,
            "O1 guarded {} !< O0 guarded {}",
            o1.guarded_ops,
            o0.guarded_ops
        );
        assert!(
            o1.cycles_per_packet <= o0.cycles_per_packet,
            "O1 {} cycles/pkt !<= O0 {}",
            o1.cycles_per_packet,
            o0.cycles_per_packet
        );
    }

    #[test]
    fn render_table_includes_anchors() {
        let rows = table_area(OrganizationKind::Arbitrated);
        let md = render_area_table(OrganizationKind::Arbitrated, &rows);
        assert!(md.contains("| 1/4 |"));
        assert!(md.contains("158"));
    }
}
