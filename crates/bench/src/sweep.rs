//! Parallel sweep runner: fans independent (config × organization × seed)
//! experiment runs across scoped worker threads.
//!
//! The paper's evaluation sweeps the 1/2, 1/4, 1/8 producer/consumer cases
//! across both memory organizations; every run is independent, so the
//! harness binaries farm them out with [`parallel_map`] behind a
//! `--jobs N` flag. Determinism is preserved by construction: workers pull
//! indices from a shared work-stealing counter, but results are merged
//! back **in input order** and all printing/serialization happens on the
//! caller's thread afterwards — so output is byte-identical to the serial
//! path for any worker count (the equivalence tests in
//! `tests/parallel_equivalence.rs` assert this).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the host's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses `--jobs N` from argv; defaults to [`default_jobs`]. `--jobs 0`
/// is clamped to 1.
pub fn jobs_arg(args: &[String]) -> usize {
    crate::arg_value(args, "--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(default_jobs)
        .max(1)
}

/// Runs `f(0..n)` across `jobs` scoped worker threads with a
/// work-stealing index counter, returning results in index order.
///
/// With `jobs <= 1` (or `n <= 1`) the closures run serially on the calling
/// thread — the parallel path produces the same `Vec` in the same order,
/// just faster.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                results
                    .lock()
                    .expect("a worker panicked while holding the results lock")
                    .push((i, out));
            });
        }
    });
    let mut collected = results.into_inner().expect("workers joined");
    debug_assert_eq!(collected.len(), n, "every index produced a result");
    // Deterministic merge: completion order varies with scheduling, the
    // returned order never does.
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Convenience: [`parallel_map`] over a slice of configurations.
pub fn parallel_map_slice<'a, C, T, F>(configs: &'a [C], jobs: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&'a C) -> T + Sync,
{
    parallel_map(configs.len(), jobs, |i| f(&configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 8] {
            let out = parallel_map(17, jobs, |i| {
                // Stagger completion: later indices finish earlier.
                if jobs > 1 {
                    std::thread::sleep(std::time::Duration::from_micros((17 - i as u64) * 50));
                }
                i * i
            });
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = parallel_map(9, 1, |i| format!("row-{i}"));
        let parallel = parallel_map(9, 4, |i| format!("row-{i}"));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_edge_counts() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
        // More jobs than work.
        assert_eq!(parallel_map(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn slice_variant_borrows_configs() {
        let configs = vec![("a", 1), ("b", 2), ("c", 3)];
        let out = parallel_map_slice(&configs, 2, |&(name, n)| format!("{name}{n}"));
        assert_eq!(out, vec!["a1", "b2", "c3"]);
    }

    #[test]
    fn jobs_arg_parses_and_defaults() {
        let args: Vec<String> = ["bin", "--jobs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(jobs_arg(&args), 3);
        let args: Vec<String> = ["bin", "--jobs", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(jobs_arg(&args), 1, "clamped to one worker");
        let args: Vec<String> = vec!["bin".into()];
        assert_eq!(jobs_arg(&args), default_jobs());
        let args: Vec<String> = ["bin", "--jobs", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(jobs_arg(&args), default_jobs(), "garbage falls back");
    }
}
