//! Regenerates the §4 timing results (E3/E4): achieved Fmax for both
//! organizations at 2/4/8 consumers, against the paper's anchors.

use memsync_bench::{fmax_anchors, implement_wrapper, SCENARIOS};
use memsync_core::OrganizationKind;

fn main() {
    println!("Achieved clock rates (post implementation model), target 125 MHz\n");
    println!("| consumers | arbitrated (MHz) | paper | event-driven (MHz) | paper |");
    println!("|-----------|------------------|-------|--------------------|-------|");
    let aa = fmax_anchors(OrganizationKind::Arbitrated);
    let ea = fmax_anchors(OrganizationKind::EventDriven);
    for (i, &n) in SCENARIOS.iter().enumerate() {
        let a = implement_wrapper(OrganizationKind::Arbitrated, n);
        let e = implement_wrapper(OrganizationKind::EventDriven, n);
        println!(
            "| {n} | {:.1} | {:.0} | {:.1} | {:.0} |",
            a.timing.fmax_mhz, aa[i], e.timing.fmax_mhz, ea[i]
        );
    }
    println!("\ncritical paths (ns):");
    for &n in &SCENARIOS {
        let a = implement_wrapper(OrganizationKind::Arbitrated, n);
        let e = implement_wrapper(OrganizationKind::EventDriven, n);
        println!(
            "  n={n}: arbitrated {:.2} ns, event-driven {:.2} ns",
            a.timing.critical_path_ns, e.timing.critical_path_ns
        );
    }
}
