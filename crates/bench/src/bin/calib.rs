//! One-off calibration fit: finds delay-model constants that reproduce the
//! paper's six Fmax anchors, then prints them for `fpga::calibration`.

use memsync_core::{arbitrated, event_driven, spec::WrapperSpec};
use memsync_fpga::calibration::{DelayModel, PAPER_ANCHORS};
use memsync_fpga::timing::analyze_with;
use memsync_rtl::netlist::Module;

fn modules() -> Vec<(Module, f64)> {
    let mut v = Vec::new();
    for (i, n) in [2usize, 4, 8].iter().enumerate() {
        let s = WrapperSpec::single_producer(*n);
        v.push((
            arbitrated::generate(&s).unwrap(),
            PAPER_ANCHORS.arbitrated_fmax_mhz[i],
        ));
        v.push((
            event_driven::generate(&s).unwrap(),
            PAPER_ANCHORS.event_driven_fmax_mhz[i],
        ));
    }
    v
}

fn loss(ms: &[(Module, f64)], m: DelayModel) -> f64 {
    ms.iter()
        .map(|(module, anchor)| {
            let f = analyze_with(module, m).unwrap().fmax_mhz;
            ((f - anchor) / anchor).powi(2)
        })
        .sum()
}

fn main() {
    if std::env::args().any(|a| a == "--path") {
        for n in [2usize, 8] {
            let s = WrapperSpec::single_producer(n);
            for (label, m) in [
                ("arb", arbitrated::generate(&s).unwrap()),
                ("evt", event_driven::generate(&s).unwrap()),
            ] {
                let (rep, path) =
                    memsync_fpga::timing::critical_path(&m, DelayModel::VIRTEX2PRO).unwrap();
                println!("{label} n={n}: {rep}");
                for step in path {
                    println!("  {step}");
                }
            }
        }
        return;
    }
    let ms = modules();
    let mut best = DelayModel::VIRTEX2PRO;
    let mut best_loss = loss(&ms, best);
    println!("initial loss {best_loss:.5}");

    // Coordinate descent over the knobs with multiplicative steps.
    let mut rng_state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut rnd = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 11) as f64 / (1u64 << 53) as f64
    };
    for round in 0..12000 {
        let mut cand = best;
        let knob = round % 8;
        let factor = 0.5 + rnd();
        match knob {
            0 => cand.t_lut = (cand.t_lut * factor).clamp(0.25, 0.65),
            1 => cand.t_net_base = (cand.t_net_base * factor).clamp(0.15, 0.9),
            2 => cand.t_net_fanout = (cand.t_net_fanout * factor).clamp(0.05, 0.45),
            3 => cand.t_cam_prio = (cand.t_cam_prio * factor).clamp(0.02, 0.5),
            4 => cand.t_bram_cko = (cand.t_bram_cko * factor).clamp(0.5, 3.0),
            5 => cand.t_cko = (cand.t_cko * factor).clamp(0.3, 1.0),
            6 => cand.t_su = (cand.t_su * factor).clamp(0.2, 1.0),
            _ => cand.t_carry = (cand.t_carry * factor).clamp(0.02, 0.12),
        }
        let l = loss(&ms, cand);
        if l < best_loss {
            best_loss = l;
            best = cand;
        }
    }
    println!("fitted loss {best_loss:.5}");
    println!("{best:#?}");
    for (i, n) in [2usize, 4, 8].iter().enumerate() {
        let s = WrapperSpec::single_producer(*n);
        let fa = analyze_with(&arbitrated::generate(&s).unwrap(), best)
            .unwrap()
            .fmax_mhz;
        let fe = analyze_with(&event_driven::generate(&s).unwrap(), best)
            .unwrap()
            .fmax_mhz;
        println!(
            "n={n}: arb {fa:6.1} (anchor {}), evt {fe:6.1} (anchor {})",
            PAPER_ANCHORS.arbitrated_fmax_mhz[i], PAPER_ANCHORS.event_driven_fmax_mhz[i]
        );
    }
}
