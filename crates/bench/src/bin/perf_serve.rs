//! Self-timing harness for the memsync-serve service path.
//!
//! Boots in-process servers on ephemeral loopback ports (4 shards of the
//! egress-4 forwarding application, arbitrated organization) and drives
//! them closed-loop from several client connections, measuring sustained
//! packets/sec end to end: TCP framing, the protocol-v2 handshake, flow
//! routing, bounded queues, backend activations, and the reply path.
//! Both forwarding backends are measured — `sim` (cycle-accurate paced
//! simulator, the reference) and `fast` (the compiled functional fast
//! path) — and the best-of-reps rates land in `BENCH_serve.json` at the
//! repo root.
//!
//! The fast backend is measured twice: with request tracing disabled
//! (`fast_packets_per_sec_traced_off` — the hot path must pay nothing for
//! the tracing plane when it is off) and with tracing enabled
//! (`fast_packets_per_sec_traced` — the instrumented rate). The recorded
//! traced-off rate is the floor the tracing plane's zero-cost-when-off
//! contract is enforced against.
//!
//! Modes:
//!
//! * default — full measurement per backend (3 reps x 8 conns x
//!   [`BATCH`]-packet batches), writes `BENCH_serve.json` (`--out <path>`
//!   overrides);
//! * `--check` — CI smoke: short measurements compared against the
//!   recorded values; exits non-zero (release builds only) when the sim
//!   backend is more than 3x slower than recorded, the traced-off fast
//!   backend fails to clear 10x the *current* sim rate, or enabling
//!   tracing costs more than half the traced-off rate.

use memsync_bench::arg_value;
use memsync_netapp::Workload;
use memsync_serve::{BackendKind, Client, ServeConfig, Server, SubmitOptions, TracingConfig};
use memsync_trace::Json;
use std::time::Instant;

const SHARDS: usize = 4;
const CONNS: usize = 8;
const BATCH: usize = 1024;
const ROUTES: usize = 64;

/// The fast backend must beat the sim backend by at least this factor —
/// the whole point of a compiled fast path.
const FAST_OVER_SIM_FLOOR: f64 = 10.0;

/// Enabling tracing must keep at least this fraction of the traced-off
/// rate in the CI check. The design target is <2% overhead (the recorded
/// `traced_overhead_pct` in `BENCH_serve.json` documents the measured
/// value); loopback CI runners are too noisy to enforce 2%, so the check
/// fails only on a gross regression.
const TRACED_OVER_OFF_FLOOR: f64 = 0.5;

/// Tracing configuration for the instrumented measurement: enabled with
/// default sampling, no span export (file IO is not part of the hot-path
/// contract).
fn traced_config() -> TracingConfig {
    TracingConfig {
        enabled: true,
        ..TracingConfig::default()
    }
}

/// Packets/sec over one rep: `conns` closed-loop connections submitting
/// `jobs` batches of [`BATCH`] packets each.
fn rep(addr: std::net::SocketAddr, conns: usize, jobs: usize, seed: u64) -> f64 {
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retries(100_000)
                    .connect(addr)
                    .expect("connect");
                let w = Workload::generate(seed.wrapping_add(c as u64), jobs * BATCH, ROUTES);
                let mut served = 0u64;
                for chunk in w.packets.chunks(BATCH) {
                    let r = client
                        .submit(chunk, SubmitOptions::new())
                        .expect("closed-loop submit");
                    served += u64::from(r.forwarded) + u64::from(r.dropped);
                }
                served
            })
        })
        .collect();
    let t0 = Instant::now();
    let served: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("load thread"))
        .sum();
    assert_eq!(served as usize, conns * jobs * BATCH, "lossless accounting");
    served as f64 / t0.elapsed().as_secs_f64()
}

/// Best-of-`reps` sustained packets/sec against a fresh server running
/// `backend` with the given tracing configuration.
fn measure(backend: BackendKind, jobs: usize, reps: usize, tracing: TracingConfig) -> f64 {
    let config = ServeConfig {
        shards: SHARDS,
        routes: ROUTES,
        backend,
        batch_max: BATCH,
        tracing,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let mut best = 0.0f64;
    for r in 0..reps {
        best = best.max(rep(addr, CONNS, jobs, 0x5EED + r as u64));
    }
    server.stop();
    server.wait();
    best
}

fn bench_path(args: &[String]) -> String {
    arg_value(args, "--out")
        .unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")))
}

/// Extracts the integer following `"key":` from a flat JSON document.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = bench_path(&args);

    if args.iter().any(|a| a == "--check") {
        let doc = std::fs::read_to_string(&path).expect("BENCH_serve.json present at repo root");
        let recorded = json_u64(&doc, "sim_packets_per_sec")
            .or_else(|| json_u64(&doc, "packets_per_sec"))
            .expect("sim_packets_per_sec recorded");
        let sim = measure(BackendKind::Sim, 8, 2, TracingConfig::default());
        // The fast backend finishes a jobs=8 rep in tens of milliseconds,
        // where connect/warmup costs dominate and understate the rate —
        // give it enough jobs for the steady state to show.
        let fast = measure(BackendKind::Fast, 24, 2, TracingConfig::default());
        let traced = measure(BackendKind::Fast, 24, 2, traced_config());
        let floor = recorded as f64 / 3.0;
        println!(
            "serve perf check: sim {sim:.0} pkts/sec (recorded {recorded}, floor {floor:.0}), \
             fast {fast:.0} pkts/sec ({:.1}x sim, floor {FAST_OVER_SIM_FLOOR:.0}x), \
             traced {traced:.0} pkts/sec ({:+.1}% vs traced-off)",
            fast / sim,
            (traced / fast - 1.0) * 100.0
        );
        if cfg!(debug_assertions) {
            // The recorded number is a release measurement; a debug build
            // cannot meet it, so only release runs enforce the floors.
            println!("debug build: thresholds not enforced");
            return;
        }
        let mut failed = false;
        if sim < floor {
            eprintln!("serve perf check FAILED: sim backend more than 3x slower than recorded");
            failed = true;
        }
        if fast < sim * FAST_OVER_SIM_FLOOR {
            eprintln!(
                "serve perf check FAILED: traced-off fast backend only {:.1}x the sim \
                 backend (needs {FAST_OVER_SIM_FLOOR:.0}x)",
                fast / sim
            );
            failed = true;
        }
        if traced < fast * TRACED_OVER_OFF_FLOOR {
            eprintln!(
                "serve perf check FAILED: tracing-enabled rate {traced:.0} fell below \
                 {TRACED_OVER_OFF_FLOOR}x the traced-off rate {fast:.0}"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("serve perf check passed");
        return;
    }

    let jobs = 25;
    println!(
        "serve self-timing ({SHARDS} shards, {CONNS} conns x {jobs} jobs x {BATCH} packets, \
         closed loop over loopback TCP)"
    );
    let sim = measure(BackendKind::Sim, jobs, 3, TracingConfig::default());
    println!("  sim backend:  {sim:.0} packets/sec");
    let fast = measure(BackendKind::Fast, jobs, 3, TracingConfig::default());
    println!(
        "  fast backend: {fast:.0} packets/sec ({:.1}x sim, tracing off)",
        fast / sim
    );
    let traced = measure(BackendKind::Fast, jobs, 3, traced_config());
    let overhead_pct = (1.0 - traced / fast) * 100.0;
    println!("  fast backend: {traced:.0} packets/sec (tracing on, {overhead_pct:+.1}% overhead)");

    let doc = Json::obj()
        .with(
            "workload",
            Json::Str(format!(
                "loopback closed-loop: {SHARDS} shards of forwarding app egress=4, \
                 arbitrated, {ROUTES}-route FIB, {CONNS} conns, {BATCH}-packet \
                 batches, per backend"
            )),
        )
        .with("shards", (SHARDS as u64).into())
        .with("conns", (CONNS as u64).into())
        .with("batch", (BATCH as u64).into())
        .with("jobs_per_conn", (jobs as u64).into())
        .with("reps", 3u64.into())
        .with("sim_packets_per_sec", (sim.round() as u64).into())
        .with("fast_packets_per_sec", (fast.round() as u64).into())
        // The tracing-plane contract fields: the traced-off rate is the
        // canonical fast rate (tracing disabled must cost nothing), the
        // traced rate is the instrumented path, and the overhead is the
        // measured gap (design target: under 2%).
        .with(
            "fast_packets_per_sec_traced_off",
            (fast.round() as u64).into(),
        )
        .with(
            "fast_packets_per_sec_traced",
            (traced.round() as u64).into(),
        )
        .with(
            "traced_overhead_pct",
            ((overhead_pct * 10.0).round() / 10.0).into(),
        )
        .with("fast_over_sim", ((fast / sim * 10.0).round() / 10.0).into())
        // Legacy key, kept pointing at the reference backend so older
        // tooling reading `packets_per_sec` keeps working.
        .with("packets_per_sec", (sim.round() as u64).into());
    std::fs::write(&path, format!("{}\n", doc.pretty())).expect("write BENCH_serve.json");
    println!("  written to {path}");
}
