//! Self-timing harness for the memsync-serve service path.
//!
//! Boots in-process servers on ephemeral loopback ports (4 shards of the
//! egress-4 forwarding application, arbitrated organization) and drives
//! them closed-loop from several client connections, measuring sustained
//! packets/sec end to end: TCP framing, the protocol-v2 handshake, flow
//! routing, bounded queues, backend activations, and the reply path.
//! Both forwarding backends are measured — `sim` (cycle-accurate paced
//! simulator, the reference) and `fast` (the compiled batch fast path) —
//! and the best-of-reps rates land in `BENCH_serve.json` at the repo
//! root.
//!
//! Measurement discipline: every connection pre-generates its workload
//! and parks on a [`std::sync::Barrier`] before the clock starts, so
//! packet generation never pollutes the timed window; every server gets
//! an untimed warmup rep before its timed reps. The traced-off and
//! traced fast measurements run *interleaved against the same pair of
//! warmed servers* (off rep, traced rep, off rep, ...) so machine drift
//! between the two can no longer manufacture a negative tracing
//! overhead; the recorded overhead is additionally clamped at 0.
//!
//! Beyond the end-to-end rates, the batch kernels themselves are timed
//! in isolation — `FastBackend` driven submit/drain with no TCP — in
//! both batch (structure-of-arrays) and scalar (descriptor-at-a-time
//! baseline) modes; `batch_over_scalar` records the speedup.
//!
//! The reactor frontend is measured twice: the same 8-conn closed-loop
//! workload as the threads rows (`reactor_packets_per_sec`, directly
//! comparable to `fast_packets_per_sec`), and a 5000-connection fan-in
//! (`reactor5k_*` — 5000 live connections each pipelining one 200-packet
//! verify batch per round, one million packets per timed round, zero
//! mismatches enforced inside the measurement).
//!
//! Modes:
//!
//! * default — full measurement per backend (3 reps x 8 conns x
//!   [`BATCH`]-packet batches), writes `BENCH_serve.json` (`--out <path>`
//!   overrides);
//! * `--check` — CI smoke: short measurements compared against the
//!   recorded values; exits non-zero (release builds only) when the sim
//!   backend is more than 3x slower than recorded, the O1-middle-end sim
//!   backend falls below 0.8x the same-run O0 sim rate (the two are
//!   pacing-bound and equal in expectation; the margin absorbs
//!   measurement noise), the traced-off fast
//!   backend fails to clear 10x the *current* sim rate, enabling tracing
//!   costs more than half the traced-off rate, or the raw batch kernels
//!   fail to clear 2x the recorded end-to-end fast rate.

use memsync_bench::arg_value;
use memsync_core::OptLevel;
use memsync_netapp::fib::Route;
use memsync_netapp::Workload;
use memsync_serve::backend::{FastBackend, ForwardingBackend};
use memsync_serve::{
    BackendKind, Client, FrontendKind, Response, ServeConfig, Server, SubmitOptions, TracingConfig,
};
use memsync_trace::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const CONNS: usize = 8;
const BATCH: usize = 8192;
const ROUTES: usize = 64;
const EGRESS: usize = 4;

/// The fast backend must beat the sim backend by at least this factor —
/// the whole point of a compiled fast path.
const FAST_OVER_SIM_FLOOR: f64 = 10.0;

/// Enabling tracing must keep at least this fraction of the traced-off
/// rate in the CI check. The design target is <2% overhead (the recorded
/// `traced_overhead_pct` in `BENCH_serve.json` documents the measured
/// value); loopback CI runners are too noisy to enforce 2%, so the check
/// fails only on a gross regression.
const TRACED_OVER_OFF_FLOOR: f64 = 0.5;

/// The raw batch kernels (no TCP, no framing) must clear at least this
/// multiple of the *recorded end-to-end* fast rate — if they cannot, the
/// batch path has regressed to where the service path would notice.
const BATCH_OVER_E2E_FLOOR: f64 = 2.0;

/// Tracing configuration for the instrumented measurement: enabled with
/// default sampling, no span export (file IO is not part of the hot-path
/// contract).
fn traced_config() -> TracingConfig {
    TracingConfig {
        enabled: true,
        ..TracingConfig::default()
    }
}

/// Packets/sec over one rep: `conns` closed-loop connections submitting
/// `jobs` batches of [`BATCH`] packets each. Connections connect and
/// pre-generate their whole workload *before* the start barrier releases
/// the clock, so only submit/response time is measured.
fn rep(addr: std::net::SocketAddr, conns: usize, jobs: usize, seed: u64) -> f64 {
    let start = Arc::new(Barrier::new(conns + 1));
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retries(100_000)
                    .connect(addr)
                    .expect("connect");
                let w = Workload::generate(seed.wrapping_add(c as u64), jobs * BATCH, ROUTES);
                start.wait();
                let mut served = 0u64;
                for chunk in w.packets.chunks(BATCH) {
                    let r = client
                        .submit(chunk, SubmitOptions::new())
                        .expect("closed-loop submit");
                    served += u64::from(r.forwarded) + u64::from(r.dropped);
                }
                served
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    let served: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("load thread"))
        .sum();
    assert_eq!(served as usize, conns * jobs * BATCH, "lossless accounting");
    served as f64 / t0.elapsed().as_secs_f64()
}

/// Boots a fresh server running `backend` under `tracing`, served by
/// `frontend`.
fn boot(backend: BackendKind, tracing: TracingConfig, frontend: FrontendKind) -> Server {
    boot_opt(backend, tracing, frontend, OptLevel::O0)
}

/// [`boot`] with an explicit middle-end level for the compiled FSMs.
fn boot_opt(
    backend: BackendKind,
    tracing: TracingConfig,
    frontend: FrontendKind,
    opt: OptLevel,
) -> Server {
    let config = ServeConfig {
        shards: SHARDS,
        routes: ROUTES,
        backend,
        batch_max: BATCH,
        tracing,
        frontend,
        opt,
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", config).expect("bind loopback")
}

/// Best-of-`reps` for the sim backend at O0 and O1, measured interleaved
/// against the same pair of warmed servers (one O0 rep, one O1 rep,
/// repeat) so machine drift hits both series equally — the `--check`
/// floor compares the two directly.
fn measure_sim_pair(jobs: usize, reps: usize) -> (f64, f64) {
    let o0_server = boot(
        BackendKind::Sim,
        TracingConfig::default(),
        FrontendKind::Threads,
    );
    let o1_server = boot_opt(
        BackendKind::Sim,
        TracingConfig::default(),
        FrontendKind::Threads,
        OptLevel::O1,
    );
    let (o0_addr, o1_addr) = (o0_server.local_addr(), o1_server.local_addr());
    let _ = rep(o0_addr, CONNS, jobs.min(4), 0x3A3A);
    let _ = rep(o1_addr, CONNS, jobs.min(4), 0x3A3A);
    let (mut o0, mut o1) = (0.0f64, 0.0f64);
    for r in 0..reps {
        o0 = o0.max(rep(o0_addr, CONNS, jobs, 0x5EED + r as u64));
        o1 = o1.max(rep(o1_addr, CONNS, jobs, 0x9EED + r as u64));
    }
    for s in [o0_server, o1_server] {
        s.stop();
        s.wait();
    }
    (o0, o1)
}

/// Like the sim/fast measurements, parameterized on the connection
/// frontend — the
/// threads-vs-reactor comparison drives the same closed-loop reps against
/// both so the numbers differ only in the connection plane.
fn measure_frontend(
    backend: BackendKind,
    jobs: usize,
    reps: usize,
    tracing: TracingConfig,
    frontend: FrontendKind,
) -> f64 {
    let server = boot(backend, tracing, frontend);
    let addr = server.local_addr();
    let _ = rep(addr, CONNS, jobs.min(4), 0x3A3A); // warmup: caches, lanes, FIB
    let mut best = 0.0f64;
    for r in 0..reps {
        best = best.max(rep(addr, CONNS, jobs, 0x5EED + r as u64));
    }
    server.stop();
    server.wait();
    best
}

/// Best-of-`reps` for the fast backend with tracing off and on, measured
/// **interleaved against the same pair of warmed servers** — one off rep,
/// one traced rep, repeat. Any slow machine drift (thermal, noisy
/// neighbor) hits both series equally instead of whichever happened to
/// run second, which is what used to let the reported overhead go
/// negative.
fn measure_traced_pair(jobs: usize, reps: usize) -> (f64, f64) {
    let off_server = boot(
        BackendKind::Fast,
        TracingConfig::default(),
        FrontendKind::Threads,
    );
    let traced_server = boot(BackendKind::Fast, traced_config(), FrontendKind::Threads);
    let (off_addr, traced_addr) = (off_server.local_addr(), traced_server.local_addr());
    let _ = rep(off_addr, CONNS, jobs.min(4), 0x3A3A);
    let _ = rep(traced_addr, CONNS, jobs.min(4), 0x3A3A);
    let (mut off, mut traced) = (0.0f64, 0.0f64);
    for r in 0..reps {
        off = off.max(rep(off_addr, CONNS, jobs, 0x5EED + r as u64));
        traced = traced.max(rep(traced_addr, CONNS, jobs, 0x7EED + r as u64));
    }
    for s in [off_server, traced_server] {
        s.stop();
        s.wait();
    }
    (off, traced)
}

/// The 5000-connection fan-in measurement: `conns` live connections to a
/// reactor-frontend fast-backend server, multiplexed onto 8 worker
/// threads that pipeline one verify-mode `batch`-packet submit per
/// connection per round (send on every connection, then collect every
/// response). One warmup round, then `rounds` timed rounds; returns the
/// best round's packets/sec. Panics on any verify mismatch, lost update,
/// or shard restart — at this fan-in those are correctness regressions,
/// not noise.
fn measure_reactor_fanin(conns: usize, batch: usize, rounds: usize) -> f64 {
    memsync_serve::raise_fd_limit();
    let config = ServeConfig {
        shards: SHARDS,
        routes: ROUTES,
        backend: BackendKind::Fast,
        batch_max: BATCH,
        queue_cap: 1024,
        frontend: FrontendKind::Reactor,
        max_conns: conns + 16,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let workers = 8;
    // Two barrier crossings bracket each round: workers arrive before
    // sending and after collecting, and the main thread times the gap.
    let round_barrier = Arc::new(Barrier::new(workers + 1));
    let handles: Vec<_> = (0..workers)
        .map(|k| {
            let rb = Arc::clone(&round_barrier);
            std::thread::spawn(move || {
                let mut lanes: Vec<_> = (k..conns)
                    .step_by(workers)
                    .map(|g| {
                        let client = Client::builder().connect(addr).expect("open fan-in lane");
                        let w = Workload::generate(0xFA71 + g as u64, batch, ROUTES);
                        (client, w.packets)
                    })
                    .collect();
                let verify = SubmitOptions::new().verify(true);
                let mut served = 0u64;
                for _ in 0..=rounds {
                    rb.wait();
                    for (client, packets) in &mut lanes {
                        client.submit_send(packets, verify).expect("pipelined send");
                    }
                    for (client, packets) in &mut lanes {
                        loop {
                            match client.submit_recv().expect("pipelined recv") {
                                Response::Batch {
                                    forwarded,
                                    dropped,
                                    mismatches,
                                } => {
                                    assert_eq!(mismatches, 0, "verify mismatch at fan-in");
                                    served += u64::from(forwarded) + u64::from(dropped);
                                    break;
                                }
                                Response::Busy(_) => {
                                    std::thread::sleep(Duration::from_millis(1));
                                    client.submit_send(packets, verify).expect("busy resend");
                                }
                                other => panic!("unexpected submit response: {other:?}"),
                            }
                        }
                    }
                    rb.wait();
                }
                served
            })
        })
        .collect();
    let mut best = 0.0f64;
    for r in 0..=rounds {
        round_barrier.wait();
        let t0 = Instant::now();
        round_barrier.wait();
        if r > 0 {
            // Round 0 is the untimed warmup (caches, FIB, kernel buffers).
            best = best.max((conns * batch) as f64 / t0.elapsed().as_secs_f64());
        }
    }
    let served: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("fan-in worker"))
        .sum();
    assert_eq!(
        served,
        ((rounds + 1) * conns * batch) as u64,
        "lossless accounting across the fan-in"
    );
    let mut client = Client::connect(addr).expect("stats connection");
    let snap = client.stats().expect("stats");
    assert_eq!(snap.lost_updates, 0, "lost updates at fan-in");
    assert_eq!(snap.shard_restarts, 0, "shard restarts at fan-in");
    assert_eq!(snap.mismatches, 0, "server-side mismatch count");
    drop(client);
    server.stop();
    server.wait();
    best
}

/// A table swap must complete (rebuild, publish, and clear the drain
/// barrier on every shard) well inside the control worker's 250ms
/// barrier deadline — a p99 at or past the deadline means retirement is
/// lagging behind publication under load.
const SWAP_LATENCY_CEILING_US: u64 = 250_000;

/// p50/p99 control-plane swap latency in microseconds: boots a
/// fast-backend server, keeps two closed-loop connections submitting
/// packets (so the post-swap drain barrier is contended, not a no-op),
/// and runs `pairs` sequential add/withdraw control pairs — each is its
/// own rebuild + publish + barrier round trip. The numbers come from
/// the server's own dequeue-to-barrier measurement in the stats `fib`
/// section; the retirement audit (`retired == generation - 1`) is
/// asserted before returning.
fn measure_swap_latency(pairs: usize) -> (u64, u64) {
    let server = boot(
        BackendKind::Fast,
        TracingConfig::default(),
        FrontendKind::Threads,
    );
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let load: Vec<_> = (0..2)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retries(100_000)
                    .connect(addr)
                    .expect("background load connect");
                let w = Workload::generate(0xC0DE + c as u64, 1024, ROUTES);
                while !stop.load(Ordering::Relaxed) {
                    client
                        .submit(&w.packets, SubmitOptions::new())
                        .expect("background submit");
                }
            })
        })
        .collect();
    let mut control = Client::connect(addr).expect("control connection");
    assert!(
        control.supports_control(),
        "server must advertise the control capability"
    );
    // RFC 2544 benchmarking space, disjoint from the synthetic FIB.
    let routes: Vec<Route> = (0..32u32)
        .map(|i| Route {
            prefix: 0xC612_0000 | (i << 8),
            len: 24,
            next_hop: 9_000 + i,
        })
        .collect();
    let prefixes: Vec<(u32, u8)> = routes.iter().map(|r| (r.prefix, r.len)).collect();
    for _ in 0..pairs {
        let added = control.route_add(&routes).expect("route add");
        assert_eq!(added.applied as usize, routes.len(), "add applied fully");
        let withdrawn = control.route_withdraw(&prefixes).expect("route withdraw");
        assert_eq!(
            withdrawn.applied as usize,
            prefixes.len(),
            "withdraw applied fully"
        );
    }
    let snap = control.stats().expect("stats frame");
    stop.store(true, Ordering::Relaxed);
    for h in load {
        h.join().expect("background load thread");
    }
    drop(control);
    server.stop();
    server.wait();
    let fib = snap.fib.expect("fib section");
    assert_eq!(
        fib.retired,
        fib.generation - 1,
        "every superseded table retired"
    );
    let lat = fib.swap_latency_us.expect("swap latency after mutations");
    (lat.p50, lat.p99)
}

/// Raw kernel rate: descriptors/sec through a [`FastBackend`] submit →
/// drain loop with no service path around it. `scalar: true` measures
/// the descriptor-at-a-time baseline the batch kernels replaced.
fn measure_backend_rate(scalar: bool, window: Duration) -> f64 {
    let descriptors: Vec<u32> = Workload::generate(0xFA57, BATCH, ROUTES)
        .packets
        .iter()
        .map(|p| p.descriptor())
        .collect();
    let mut backend = if scalar {
        FastBackend::scalar(EGRESS)
    } else {
        FastBackend::new(EGRESS)
    };
    for _ in 0..16 {
        backend.submit_batch(&descriptors);
        let _ = backend.drain_egress();
    }
    let mut sink = 0u64;
    let mut served = 0u64;
    let t0 = Instant::now();
    loop {
        backend.submit_batch(&descriptors);
        let frames = backend.drain_egress();
        // Read the view the way a shard does so the work cannot fold away.
        sink = sink.wrapping_add(u64::from(frames[EGRESS - 1][BATCH - 1]));
        served += BATCH as u64;
        if t0.elapsed() >= window {
            break;
        }
    }
    let rate = served as f64 / t0.elapsed().as_secs_f64();
    assert_ne!(sink, 0);
    rate
}

fn bench_path(args: &[String]) -> String {
    arg_value(args, "--out")
        .unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")))
}

/// Extracts the integer following `"key":` from a flat JSON document.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = bench_path(&args);

    if args.iter().any(|a| a == "--check") {
        let doc = std::fs::read_to_string(&path).expect("BENCH_serve.json present at repo root");
        let recorded = json_u64(&doc, "sim_packets_per_sec")
            .or_else(|| json_u64(&doc, "packets_per_sec"))
            .expect("sim_packets_per_sec recorded");
        let recorded_fast = json_u64(&doc, "fast_packets_per_sec").unwrap_or(0);
        let recorded_5k = json_u64(&doc, "reactor5k_packets_per_sec");
        let (sim, sim_opt) = measure_sim_pair(8, 2);
        // The fast backend finishes a jobs=8 rep in tens of milliseconds,
        // where connect/warmup costs dominate and understate the rate —
        // give it enough jobs for the steady state to show.
        let (fast, traced) = measure_traced_pair(24, 2);
        let reactor = measure_frontend(
            BackendKind::Fast,
            24,
            2,
            TracingConfig::default(),
            FrontendKind::Reactor,
        );
        let reactor5k = measure_reactor_fanin(5_000, 200, 1);
        let batch = measure_backend_rate(false, Duration::from_millis(200));
        let (swap_p50, swap_p99) = measure_swap_latency(10);
        let recorded_swap = json_u64(&doc, "swap_latency_p99_us");
        let floor = recorded as f64 / 3.0;
        println!(
            "serve perf check: sim {sim:.0} pkts/sec (recorded {recorded}, floor {floor:.0}), \
             sim O1 {sim_opt:.0} pkts/sec ({:+.1}% vs O0, floor 0.8x), \
             fast {fast:.0} pkts/sec ({:.1}x sim, floor {FAST_OVER_SIM_FLOOR:.0}x), \
             traced {traced:.0} pkts/sec ({:+.1}% vs traced-off), \
             reactor {reactor:.0} pkts/sec (recorded fast e2e {recorded_fast}), \
             reactor 5k-conn fan-in {reactor5k:.0} pkts/sec (recorded {:?}), \
             batch kernels {batch:.0} pkts/sec, \
             swap latency p50 {swap_p50}µs p99 {swap_p99}µs (recorded p99 {recorded_swap:?}, \
             ceiling {SWAP_LATENCY_CEILING_US}µs)",
            (sim_opt / sim - 1.0) * 100.0,
            fast / sim,
            (traced / fast - 1.0) * 100.0,
            recorded_5k
        );
        if cfg!(debug_assertions) {
            // The recorded numbers are release measurements; a debug build
            // cannot meet them, so only release runs enforce the floors.
            println!("debug build: thresholds not enforced");
            return;
        }
        let mut failed = false;
        if sim < floor {
            eprintln!("serve perf check FAILED: sim backend more than 3x slower than recorded");
            failed = true;
        }
        // The O1 middle-end must never cost simulated throughput. Both
        // rates are bounded by the same window pacing, so in expectation
        // they are equal; the 0.8x margin absorbs the same-host
        // measurement noise the interleaved best-of-reps can't (observed
        // swings of +-15% between the two halves of a run).
        if sim_opt < sim * 0.8 {
            eprintln!(
                "serve perf check FAILED: O1 sim backend {sim_opt:.0} pkts/sec fell below \
                 0.8x the same-run O0 sim rate {sim:.0}"
            );
            failed = true;
        }
        if fast < sim * FAST_OVER_SIM_FLOOR {
            eprintln!(
                "serve perf check FAILED: traced-off fast backend only {:.1}x the sim \
                 backend (needs {FAST_OVER_SIM_FLOOR:.0}x)",
                fast / sim
            );
            failed = true;
        }
        if traced < fast * TRACED_OVER_OFF_FLOOR {
            eprintln!(
                "serve perf check FAILED: tracing-enabled rate {traced:.0} fell below \
                 {TRACED_OVER_OFF_FLOOR}x the traced-off rate {fast:.0}"
            );
            failed = true;
        }
        if batch < recorded_fast as f64 * BATCH_OVER_E2E_FLOOR {
            eprintln!(
                "serve perf check FAILED: raw batch kernels {batch:.0} pkts/sec fell below \
                 {BATCH_OVER_E2E_FLOOR}x the recorded end-to-end fast rate {recorded_fast}"
            );
            failed = true;
        }
        // The reactor serves the same closed-loop workload as the
        // blocking frontend; more than 3x below the recorded blocking
        // fast rate means the event loop itself regressed.
        if reactor < recorded_fast as f64 / 3.0 {
            eprintln!(
                "serve perf check FAILED: reactor frontend {reactor:.0} pkts/sec fell below \
                 a third of the recorded threads-frontend fast rate {recorded_fast}"
            );
            failed = true;
        }
        if let Some(recorded_5k) = recorded_5k {
            if reactor5k < recorded_5k as f64 / 3.0 {
                eprintln!(
                    "serve perf check FAILED: 5k-conn fan-in {reactor5k:.0} pkts/sec fell \
                     below a third of the recorded rate {recorded_5k}"
                );
                failed = true;
            }
        }
        if swap_p99 >= SWAP_LATENCY_CEILING_US {
            eprintln!(
                "serve perf check FAILED: swap latency p99 {swap_p99}µs reached the control \
                 worker's barrier deadline — table retirement is lagging publication"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("serve perf check passed");
        return;
    }

    let jobs = 25;
    println!(
        "serve self-timing ({SHARDS} shards, {CONNS} conns x {jobs} jobs x {BATCH} packets, \
         closed loop over loopback TCP)"
    );
    let (sim, sim_opt) = measure_sim_pair(jobs, 3);
    println!("  sim backend:  {sim:.0} packets/sec");
    println!(
        "  sim backend:  {sim_opt:.0} packets/sec (O1 middle-end, {:+.1}%)",
        (sim_opt / sim - 1.0) * 100.0
    );
    let (fast, traced) = measure_traced_pair(jobs, 3);
    println!(
        "  fast backend: {fast:.0} packets/sec ({:.1}x sim, tracing off)",
        fast / sim
    );
    // Interleaved best-of-reps makes a negative overhead a measurement
    // artifact by construction; clamp so noise never records a negative.
    let overhead_pct = ((1.0 - traced / fast) * 100.0).max(0.0);
    println!("  fast backend: {traced:.0} packets/sec (tracing on, {overhead_pct:.1}% overhead)");
    let reactor = measure_frontend(
        BackendKind::Fast,
        jobs,
        3,
        TracingConfig::default(),
        FrontendKind::Reactor,
    );
    println!(
        "  fast backend: {reactor:.0} packets/sec (reactor frontend, {:.2}x threads)",
        reactor / fast
    );
    let reactor5k = measure_reactor_fanin(5_000, 200, 2);
    println!("  fast backend: {reactor5k:.0} packets/sec (reactor, 5000-conn verify fan-in)");
    let batch = measure_backend_rate(false, Duration::from_millis(500));
    let scalar = measure_backend_rate(true, Duration::from_millis(500));
    println!(
        "  batch kernels: {batch:.0} packets/sec raw ({:.1}x the scalar loop's {scalar:.0})",
        batch / scalar
    );
    let (swap_p50, swap_p99) = measure_swap_latency(50);
    println!(
        "  control plane: table swap p50 {swap_p50}µs p99 {swap_p99}µs \
         (rebuild + publish + shard drain barrier, under load)"
    );

    let doc = Json::obj()
        .with(
            "workload",
            Json::Str(format!(
                "loopback closed-loop: {SHARDS} shards of forwarding app egress=4, \
                 arbitrated, {ROUTES}-route FIB, {CONNS} conns, {BATCH}-packet \
                 batches, per backend; workloads pre-generated, barrier-started"
            )),
        )
        .with("shards", (SHARDS as u64).into())
        .with("conns", (CONNS as u64).into())
        .with("batch", (BATCH as u64).into())
        .with("jobs_per_conn", (jobs as u64).into())
        .with("reps", 3u64.into())
        .with("sim_packets_per_sec", (sim.round() as u64).into())
        // The same sim backend with the O1 middle-end compiled in; the
        // `--check` floor holds it at or above 0.8x the same-run O0 rate.
        .with("sim_packets_per_sec_opt", (sim_opt.round() as u64).into())
        .with("fast_packets_per_sec", (fast.round() as u64).into())
        // The tracing-plane contract fields: the traced-off rate is the
        // canonical fast rate (tracing disabled must cost nothing), the
        // traced rate is the instrumented path, and the overhead is the
        // measured gap (design target: under 2%; interleaved reps +
        // clamping keep it non-negative).
        .with(
            "fast_packets_per_sec_traced_off",
            (fast.round() as u64).into(),
        )
        .with(
            "fast_packets_per_sec_traced",
            (traced.round() as u64).into(),
        )
        .with(
            "traced_overhead_pct",
            ((overhead_pct * 10.0).round() / 10.0).into(),
        )
        .with("fast_over_sim", ((fast / sim * 10.0).round() / 10.0).into())
        // The reactor frontend serving the same 8-conn closed-loop
        // workload as the threads rows above, plus the conns=5000 row:
        // 5000 live connections each pipelining one 200-packet verify
        // batch per round (1M packets per timed round, zero mismatches
        // enforced in-measurement).
        .with("reactor_packets_per_sec", (reactor.round() as u64).into())
        .with(
            "reactor_over_threads",
            ((reactor / fast * 100.0).round() / 100.0).into(),
        )
        .with("reactor5k_conns", 5_000u64.into())
        .with("reactor5k_batch", 200u64.into())
        .with("reactor5k_packets_per_round", 1_000_000u64.into())
        .with(
            "reactor5k_packets_per_sec",
            (reactor5k.round() as u64).into(),
        )
        // Raw kernel rates: the batch fast path with no service around
        // it, and the scalar descriptor-at-a-time baseline it replaced.
        .with("fast_batch_packets_per_sec", (batch.round() as u64).into())
        .with(
            "fast_scalar_packets_per_sec",
            (scalar.round() as u64).into(),
        )
        .with(
            "batch_over_scalar",
            ((batch / scalar * 10.0).round() / 10.0).into(),
        )
        // Control-plane swap latency: the server's own dequeue-to-barrier
        // measurement over 50 sequential add/withdraw pairs with two
        // closed-loop connections keeping the drain barrier contended.
        .with("swap_latency_p50_us", swap_p50.into())
        .with("swap_latency_p99_us", swap_p99.into())
        // Legacy key, kept pointing at the reference backend so older
        // tooling reading `packets_per_sec` keeps working.
        .with("packets_per_sec", (sim.round() as u64).into());
    std::fs::write(&path, format!("{}\n", doc.pretty())).expect("write BENCH_serve.json");
    println!("  written to {path}");
}
