//! Self-timing harness for the memsync-serve service path.
//!
//! Boots an in-process server on an ephemeral loopback port (4 shards of
//! the egress-4 forwarding application, arbitrated organization) and
//! drives it closed-loop from several client connections, measuring
//! sustained packets/sec end to end: TCP framing, flow routing, bounded
//! queues, paced simulator activations, and the reply path. Records the
//! best-of-reps rate in `BENCH_serve.json` at the repo root.
//!
//! Modes:
//!
//! * default — full measurement (3 reps x 24k packets over 4 connections),
//!   writes `BENCH_serve.json` (`--out <path>` overrides the location);
//! * `--check` — CI smoke: a short measurement compared against the
//!   `packets_per_sec` recorded in `BENCH_serve.json`; exits non-zero if
//!   the current build is more than 3x slower than the recorded value.

use memsync_bench::arg_value;
use memsync_netapp::Workload;
use memsync_serve::{Client, ServeConfig, Server};
use memsync_trace::Json;
use std::time::Instant;

const SHARDS: usize = 4;
const CONNS: usize = 4;
const BATCH: usize = 64;
const ROUTES: usize = 64;

/// Packets/sec over one rep: `conns` closed-loop connections submitting
/// `jobs` batches of [`BATCH`] packets each.
fn rep(addr: std::net::SocketAddr, conns: usize, jobs: usize, seed: u64) -> f64 {
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let w = Workload::generate(seed.wrapping_add(c as u64), jobs * BATCH, ROUTES);
                let mut served = 0u64;
                for chunk in w.packets.chunks(BATCH) {
                    let r = client
                        .submit_retry(chunk, false, 100_000)
                        .expect("closed-loop submit");
                    served += u64::from(r.forwarded) + u64::from(r.dropped);
                }
                served
            })
        })
        .collect();
    let t0 = Instant::now();
    let served: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("load thread"))
        .sum();
    assert_eq!(served as usize, conns * jobs * BATCH, "lossless accounting");
    served as f64 / t0.elapsed().as_secs_f64()
}

/// Best-of-`reps` sustained packets/sec against a fresh server.
fn measure(jobs: usize, reps: usize) -> f64 {
    let config = ServeConfig {
        shards: SHARDS,
        routes: ROUTES,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let mut best = 0.0f64;
    for r in 0..reps {
        best = best.max(rep(addr, CONNS, jobs, 0x5EED + r as u64));
    }
    server.stop();
    server.wait();
    best
}

fn bench_path(args: &[String]) -> String {
    arg_value(args, "--out")
        .unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")))
}

/// Extracts the integer following `"key":` from a flat JSON document.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = bench_path(&args);

    if args.iter().any(|a| a == "--check") {
        let doc = std::fs::read_to_string(&path).expect("BENCH_serve.json present at repo root");
        let recorded = json_u64(&doc, "packets_per_sec").expect("packets_per_sec recorded");
        let current = measure(20, 2);
        let floor = recorded as f64 / 3.0;
        println!(
            "serve perf check: current {current:.0} pkts/sec, recorded {recorded}, floor {floor:.0}"
        );
        if cfg!(debug_assertions) {
            // The recorded number is a release measurement; a debug build
            // cannot meet it, so only release runs enforce the floor.
            println!("debug build: threshold not enforced");
            return;
        }
        if current < floor {
            eprintln!("serve perf check FAILED: more than 3x slower than recorded");
            std::process::exit(1);
        }
        println!("serve perf check passed");
        return;
    }

    let jobs = 100;
    println!(
        "serve self-timing ({SHARDS} shards, {CONNS} conns x {jobs} jobs x {BATCH} packets, \
         closed loop over loopback TCP)"
    );
    let pps = measure(jobs, 3);
    println!("  end to end: {pps:.0} packets/sec");

    let doc = Json::obj()
        .with(
            "workload",
            "loopback closed-loop: 4 shards of forwarding app egress=4, arbitrated, \
             64-route FIB, 4 conns, 64-packet batches"
                .into(),
        )
        .with("shards", (SHARDS as u64).into())
        .with("conns", (CONNS as u64).into())
        .with("batch", (BATCH as u64).into())
        .with("jobs_per_conn", (jobs as u64).into())
        .with("reps", 3u64.into())
        .with("packets_per_sec", (pps.round() as u64).into());
    std::fs::write(&path, format!("{}\n", doc.pretty())).expect("write BENCH_serve.json");
    println!("  written to {path}");
}
