//! Regenerates the latency/determinism comparison (E6): the arbitrated
//! organization's consumer-read latency after a producer write is
//! non-deterministic; the event-driven organization's is exact.
//!
//! `--trace <path>` streams every cycle event of every run as JSONL (one
//! meta line per run header); `--metrics <path>` writes the counter and
//! histogram registry of every run as one JSON document.

use memsync_bench::{arg_value, latency_experiment_traced, SCENARIOS};
use memsync_core::OrganizationKind;
use memsync_trace::{Json, JsonlSink, MetricsRegistry, NullSink, TraceSink};
use std::fs::File;
use std::io::BufWriter;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = arg_value(&args, "--trace");
    let metrics_path = arg_value(&args, "--metrics");

    let mut jsonl = trace_path
        .as_ref()
        .map(|p| JsonlSink::new(BufWriter::new(File::create(p).expect("create trace file"))));
    let mut null = NullSink;
    let mut runs: Vec<Json> = Vec::new();

    println!("Produce-to-consume latency, Bernoulli-paced producer, 200 writes\n");
    println!("| org | consumers | min | mean | max | variance | arb stalls | deterministic |");
    println!("|-----|-----------|-----|------|-----|----------|------------|---------------|");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        for &n in &SCENARIOS {
            let mut registry = MetricsRegistry::new();
            let r = {
                let sink: &mut dyn TraceSink = match jsonl.as_mut() {
                    Some(s) => {
                        s.write_meta(&format!(
                            "{{\"meta\":\"run\",\"org\":\"{kind}\",\"consumers\":{n}}}"
                        ));
                        s
                    }
                    None => &mut null,
                };
                latency_experiment_traced(kind, n, 200, 0xC0FFEE, sink, &mut registry)
            };
            println!(
                "| {kind} | {n} | {} | {:.2} | {} | {:.2} | {} | {} |",
                r.pooled.min,
                r.pooled.mean,
                r.pooled.max,
                r.pooled.variance,
                registry.counter_sum("bank0.arb_stall."),
                if r.all_deterministic { "yes" } else { "no" }
            );
            runs.push(
                Json::obj()
                    .with("org", kind.to_string().as_str().into())
                    .with("consumers", n.into())
                    .with("metrics", registry.to_json()),
            );
        }
    }
    println!("\nper-consumer detail (8 consumers):");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut registry = MetricsRegistry::new();
        let r = latency_experiment_traced(kind, 8, 200, 0xC0FFEE, &mut null, &mut registry);
        for (i, s) in r.per_consumer.iter().enumerate() {
            println!(
                "  {kind} consumer {i}: min {} mean {:.2} max {} var {:.2}",
                s.min, s.mean, s.max, s.variance
            );
        }
    }

    if let Some(path) = &metrics_path {
        let doc = Json::obj().with("runs", Json::Arr(runs));
        std::fs::write(path, doc.pretty()).expect("write metrics file");
        println!("\nmetrics written to {path}");
    }
    if let Some(s) = jsonl {
        let lines = s.lines;
        let _ = s.into_inner();
        println!(
            "trace written to {} ({lines} lines)",
            trace_path.expect("path set")
        );
    }
}
