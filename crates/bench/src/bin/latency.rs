//! Regenerates the latency/determinism comparison (E6): the arbitrated
//! organization's consumer-read latency after a producer write is
//! non-deterministic; the event-driven organization's is exact.

use memsync_bench::{latency_experiment, SCENARIOS};
use memsync_core::OrganizationKind;

fn main() {
    println!("Produce-to-consume latency, Bernoulli-paced producer, 200 writes\n");
    println!("| org | consumers | min | mean | max | variance | deterministic |");
    println!("|-----|-----------|-----|------|-----|----------|---------------|");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        for &n in &SCENARIOS {
            let r = latency_experiment(kind, n, 200, 0xC0FFEE);
            println!(
                "| {kind} | {n} | {} | {:.2} | {} | {:.2} | {} |",
                r.pooled.min,
                r.pooled.mean,
                r.pooled.max,
                r.pooled.variance,
                if r.all_deterministic { "yes" } else { "no" }
            );
        }
    }
    println!("\nper-consumer detail (8 consumers):");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let r = latency_experiment(kind, 8, 200, 0xC0FFEE);
        for (i, s) in r.per_consumer.iter().enumerate() {
            println!(
                "  {kind} consumer {i}: min {} mean {:.2} max {} var {:.2}",
                s.min, s.mean, s.max, s.variance
            );
        }
    }
}
