//! Regenerates the latency/determinism comparison (E6): the arbitrated
//! organization's consumer-read latency after a producer write is
//! non-deterministic; the event-driven organization's is exact.
//!
//! `--jobs N` fans the independent (organization × consumers) runs across
//! worker threads (default: available parallelism); output is
//! byte-identical for any job count. `--trace <path>` streams every cycle
//! event of every run as JSONL (one meta line per run header);
//! `--metrics <path>` writes the counter and histogram registry of every
//! run as one JSON document.
//!
//! `--opt {0,1}` sets the middle-end level for the thread-FSM latency
//! section (each thread's state count is its cycles-per-iteration
//! latency); `--dump-passes` additionally prints the per-thread
//! middle-end pass reports.

use memsync_bench::sweep::{jobs_arg, parallel_map_slice};
use memsync_bench::{arg_value, latency_grid, latency_run, middle_end_row, opt_arg};
use memsync_core::OrganizationKind;
use memsync_trace::Json;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = arg_value(&args, "--trace");
    let metrics_path = arg_value(&args, "--metrics");
    let jobs = jobs_arg(&args);

    let grid = latency_grid();
    let capture = trace_path.is_some();
    let runs = parallel_map_slice(&grid, jobs, |&(kind, n)| {
        latency_run(kind, n, 200, 0xC0FFEE, capture)
    });
    // The 8-consumer detail runs are independent too; fan them with the
    // same worker pool.
    let detail_kinds = [OrganizationKind::Arbitrated, OrganizationKind::EventDriven];
    let details = parallel_map_slice(&detail_kinds, jobs, |&kind| {
        latency_run(kind, 8, 200, 0xC0FFEE, false)
    });

    println!("Produce-to-consume latency, Bernoulli-paced producer, 200 writes\n");
    println!("| org | consumers | min | mean | max | variance | arb stalls | deterministic |");
    println!("|-----|-----------|-----|------|-----|----------|------------|---------------|");
    let mut metric_runs: Vec<Json> = Vec::new();
    for run in &runs {
        let r = &run.result;
        println!(
            "| {} | {} | {} | {:.2} | {} | {:.2} | {} | {} |",
            run.kind,
            run.consumers,
            r.pooled.min,
            r.pooled.mean,
            r.pooled.max,
            r.pooled.variance,
            run.registry.counter_sum("bank0.arb_stall."),
            if r.all_deterministic { "yes" } else { "no" }
        );
        metric_runs.push(
            Json::obj()
                .with("org", run.kind.to_string().as_str().into())
                .with("consumers", run.consumers.into())
                .with("metrics", run.registry.to_json()),
        );
    }
    println!("\nper-consumer detail (8 consumers):");
    for run in &details {
        for (i, s) in run.result.per_consumer.iter().enumerate() {
            println!(
                "  {} consumer {i}: min {} mean {:.2} max {} var {:.2}",
                run.kind, s.min, s.mean, s.max, s.variance
            );
        }
    }

    let opt = opt_arg(&args);
    let me = middle_end_row(4, opt);
    println!(
        "\nthread FSM latency (forwarding_4, {opt}): {} states total,",
        me.fsm_states
    );
    println!(
        "  {:.1} simulated cycles/packet end to end",
        me.cycles_per_packet
    );
    if args.iter().any(|a| a == "--dump-passes") {
        for p in &me.pass_reports {
            println!(
                "  thread `{}` [{}]: {} -> {} ops, {} -> {} states{}",
                p.thread,
                p.level,
                p.ops_before,
                p.ops_after,
                p.states_before,
                p.states_after,
                if p.gated { " (gated)" } else { "" }
            );
        }
    }

    if let Some(path) = &metrics_path {
        let doc = Json::obj().with("runs", Json::Arr(metric_runs));
        std::fs::write(path, doc.pretty()).expect("write metrics file");
        println!("\nmetrics written to {path}");
    }
    if let Some(path) = &trace_path {
        // Deterministic merge: concatenate each run's buffered trace in
        // grid order, regardless of which worker finished first.
        let mut f =
            std::io::BufWriter::new(std::fs::File::create(path).expect("create trace file"));
        let mut lines = 0u64;
        for run in &runs {
            let (bytes, n) = run.trace.as_ref().expect("capture was requested");
            f.write_all(bytes).expect("write trace file");
            lines += n;
        }
        f.flush().expect("flush trace file");
        println!("trace written to {path} ({lines} lines)");
    }
}
