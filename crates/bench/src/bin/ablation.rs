//! Regenerates the scalability ablation (E9): the cost of adding one
//! consumer to each organization — the arbitrated organization changes only
//! multiplexing (LUTs), never the sequential state; the event-driven
//! organization requires schedule/ROM changes too.

//!
//! `--jobs N` fans the independent base-size measurements across worker
//! threads (default: available parallelism); output is byte-identical for
//! any job count.

use memsync_bench::ablation_scalability;
use memsync_bench::sweep::{jobs_arg, parallel_map_slice};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = jobs_arg(&args);
    let bases = [2usize, 4, 7];
    let results = parallel_map_slice(&bases, jobs, |&b| ablation_scalability(b));

    println!("Cost of adding one consumer (n -> n+1)\n");
    println!("| base n | org | LUT delta | FF delta | state machine changed |");
    println!("|--------|-----|-----------|----------|-----------------------|");
    for (base, rows) in bases.iter().zip(&results) {
        for r in rows {
            println!(
                "| {base} | {} | {:+} | {:+} | {} |",
                r.organization,
                r.lut_delta,
                r.ff_delta,
                if r.state_changed { "yes" } else { "no" }
            );
        }
    }
    println!("\npaper: \"only the multiplexing required to support new consumer");
    println!("thread needs to be added and no changes need to be made to the");
    println!("thread related state machine(s)\" (arbitrated organization).");
    println!("note: our event-driven wrapper also keeps FFs constant because the");
    println!("event chain is centralized in the selection logic; its scaling cost");
    println!("is that the schedule ROM / mux network contents must be regenerated");
    println!("(see EXPERIMENTS.md E9).");
}
