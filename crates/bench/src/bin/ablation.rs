//! Regenerates the scalability ablation (E9): the cost of adding one
//! consumer to each organization — the arbitrated organization changes only
//! multiplexing (LUTs), never the sequential state; the event-driven
//! organization requires schedule/ROM changes too.

use memsync_bench::ablation_scalability;

fn main() {
    println!("Cost of adding one consumer (n -> n+1)\n");
    println!("| base n | org | LUT delta | FF delta | state machine changed |");
    println!("|--------|-----|-----------|----------|-----------------------|");
    for base in [2usize, 4, 7] {
        for r in ablation_scalability(base) {
            println!(
                "| {base} | {} | {:+} | {:+} | {} |",
                r.organization,
                r.lut_delta,
                r.ff_delta,
                if r.state_changed { "yes" } else { "no" }
            );
        }
    }
    println!("\npaper: \"only the multiplexing required to support new consumer");
    println!("thread needs to be added and no changes need to be made to the");
    println!("thread related state machine(s)\" (arbitrated organization).");
    println!("note: our event-driven wrapper also keeps FFs constant because the");
    println!("event chain is centralized in the selection logic; its scaling cost");
    println!("is that the schedule ROM / mux network contents must be regenerated");
    println!("(see EXPERIMENTS.md E9).");
}
