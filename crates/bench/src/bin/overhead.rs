//! Regenerates the §4 overhead accounting (E5): synchronization slices as a
//! fraction of the forwarding core (paper: 5-20% of a ~1000-slice core,
//! 5430-slice total application).
//!
//! `--jobs N` fans the independent (organization × egress) builds across
//! worker threads (default: available parallelism); output is
//! byte-identical for any job count. `--trace <path>` / `--metrics <path>`
//! additionally run the forwarding application through the cycle-accurate
//! simulator with full instrumentation, streaming events as JSONL and
//! dumping the counter registry (rx-queue depths, per-bank stalls and
//! utilization) as JSON.

use memsync_bench::sweep::{jobs_arg, parallel_map_slice};
use memsync_bench::{arg_value, overhead_experiment, SCENARIOS};
use memsync_core::OrganizationKind;
use memsync_sim::traffic::BernoulliSource;
use memsync_sim::System;
use memsync_trace::JsonlSink;
use std::fs::File;
use std::io::BufWriter;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = arg_value(&args, "--trace");
    let metrics_path = arg_value(&args, "--metrics");
    let jobs = jobs_arg(&args);

    let grid: Vec<(OrganizationKind, usize)> =
        [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
            .iter()
            .flat_map(|&k| SCENARIOS.iter().map(move |&n| (k, n)))
            .collect();
    let results = parallel_map_slice(&grid, jobs, |&(kind, n)| {
        (kind, n, overhead_experiment(kind, n))
    });

    println!("Synchronization overhead of the IP forwarding application\n");
    println!("| org | egress | core slices | sync slices | total | overhead | fmax (MHz) |");
    println!("|-----|--------|-------------|-------------|-------|----------|------------|");
    for (kind, n, r) in &results {
        println!(
            "| {kind} | {n} | {} | {} | {} | {:.1}% | {:.0} |",
            r.core_slices,
            r.sync_slices,
            r.total_slices,
            r.overhead_fraction * 100.0,
            r.fmax_mhz
        );
    }
    println!("\npaper band: 5-20% of the core functionality");

    if trace_path.is_none() && metrics_path.is_none() {
        return;
    }

    // Instrumented simulation of the arbitrated forwarding app (egress 4)
    // under Bernoulli rx traffic.
    let src = memsync_netapp::forwarding::app_source(4);
    let mut compiler = memsync_core::Compiler::new(&src);
    compiler
        .organization(OrganizationKind::Arbitrated)
        .skip_validation();
    let compiled = compiler.compile().expect("forwarding app compiles");
    let mut sys = System::new(&compiled);
    sys.attach_source("rx", Box::new(BernoulliSource::new(7, 0.1)));
    match &trace_path {
        Some(p) => sys.set_sink(Box::new(JsonlSink::new(BufWriter::new(
            File::create(p).expect("create trace file"),
        )))),
        None => sys.enable_metrics(),
    }
    for _ in 0..5000 {
        sys.step();
    }
    sys.flush_trace();
    if let Some(p) = &trace_path {
        println!("\ntrace written to {p} (5000 simulated cycles)");
    }
    if let Some(p) = &metrics_path {
        std::fs::write(p, sys.metrics.to_json().pretty()).expect("write metrics file");
        println!("metrics written to {p}");
    }
}
