//! Regenerates the §4 overhead accounting (E5): synchronization slices as a
//! fraction of the forwarding core (paper: 5-20% of a ~1000-slice core,
//! 5430-slice total application).

use memsync_bench::{overhead_experiment, SCENARIOS};
use memsync_core::OrganizationKind;

fn main() {
    println!("Synchronization overhead of the IP forwarding application\n");
    println!("| org | egress | core slices | sync slices | total | overhead | fmax (MHz) |");
    println!("|-----|--------|-------------|-------------|-------|----------|------------|");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        for &n in &SCENARIOS {
            let r = overhead_experiment(kind, n);
            println!(
                "| {kind} | {n} | {} | {} | {} | {:.1}% | {:.0} |",
                r.core_slices,
                r.sync_slices,
                r.total_slices,
                r.overhead_fraction * 100.0,
                r.fmax_mhz
            );
        }
    }
    println!("\npaper band: 5-20% of the core functionality");
}
