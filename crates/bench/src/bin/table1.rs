//! Regenerates **Table 1** — required area for the arbitrated memory
//! organization (per-BRAM overhead, P/C = 1/2, 1/4, 1/8).

use memsync_bench::{render_area_table, table_area};
use memsync_core::OrganizationKind;

fn main() {
    let rows = table_area(OrganizationKind::Arbitrated);
    println!("Table 1: Required area for arbitrated memory organization");
    println!("(paper anchors: FF constant at 66; LUT/slices grow with consumers)\n");
    println!("{}", render_area_table(OrganizationKind::Arbitrated, &rows));
}
