//! Runs every experiment and emits the measured section of EXPERIMENTS.md
//! (markdown on stdout; `--json` for machine-readable output).
//!
//! `--trace <path>` streams the latency experiment's cycle events as JSONL;
//! `--metrics <path>` writes its per-run counter/histogram registries.

use memsync_bench::*;
use memsync_core::OrganizationKind;
use memsync_trace::{Json, JsonlSink, MetricsRegistry, NullSink, TraceSink};
use std::fs::File;
use std::io::BufWriter;

fn area_rows_json(rows: &[AreaRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .with("pc", r.pc.as_str().into())
                    .with("luts", u64::from(r.luts).into())
                    .with("ffs", u64::from(r.ffs).into())
                    .with("slices", u64::from(r.slices).into())
                    .with("fmax_mhz", r.fmax_mhz.into())
            })
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let trace_path = arg_value(&args, "--trace");
    let metrics_path = arg_value(&args, "--metrics");
    let t1 = table_area(OrganizationKind::Arbitrated);
    let t2 = table_area(OrganizationKind::EventDriven);
    let overhead: Vec<_> = [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
        .iter()
        .flat_map(|&k| {
            SCENARIOS
                .iter()
                .map(move |&n| (k.to_string(), overhead_experiment(k, n)))
        })
        .collect();
    let mut jsonl = trace_path
        .as_ref()
        .map(|p| JsonlSink::new(BufWriter::new(File::create(p).expect("create trace file"))));
    let mut null = NullSink;
    let mut metric_runs: Vec<Json> = Vec::new();
    let mut latency = Vec::new();
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        for &n in &SCENARIOS {
            let mut registry = MetricsRegistry::new();
            let r = {
                let sink: &mut dyn TraceSink = match jsonl.as_mut() {
                    Some(s) => {
                        s.write_meta(&format!(
                            "{{\"meta\":\"run\",\"org\":\"{kind}\",\"consumers\":{n}}}"
                        ));
                        s
                    }
                    None => &mut null,
                };
                latency_experiment_traced(kind, n, 200, 0xC0FFEE, sink, &mut registry)
            };
            metric_runs.push(
                Json::obj()
                    .with("org", kind.to_string().as_str().into())
                    .with("consumers", n.into())
                    .with("metrics", registry.to_json()),
            );
            latency.push((kind.to_string(), r));
        }
    }
    if let Some(s) = jsonl {
        let _ = s.into_inner();
    }
    if let Some(p) = &metrics_path {
        let doc = Json::obj().with("runs", Json::Arr(metric_runs));
        std::fs::write(p, doc.pretty()).expect("write metrics file");
    }
    let ablation: Vec<_> = [2usize, 4, 7]
        .iter()
        .flat_map(|&b| ablation_scalability(b))
        .collect();

    if json {
        let overhead_json = Json::Arr(
            overhead
                .iter()
                .map(|(org, r)| {
                    Json::obj()
                        .with("org", org.as_str().into())
                        .with("egress", r.egress.into())
                        .with("core_slices", u64::from(r.core_slices).into())
                        .with("sync_slices", u64::from(r.sync_slices).into())
                        .with("total_slices", u64::from(r.total_slices).into())
                        .with("overhead_fraction", r.overhead_fraction.into())
                        .with("fmax_mhz", r.fmax_mhz.into())
                })
                .collect(),
        );
        let latency_json = Json::Arr(
            latency
                .iter()
                .map(|(org, r)| {
                    Json::obj()
                        .with("org", org.as_str().into())
                        .with("consumers", r.consumers.into())
                        .with("min", r.pooled.min.into())
                        .with("mean", r.pooled.mean.into())
                        .with("max", r.pooled.max.into())
                        .with("deterministic", r.all_deterministic.into())
                })
                .collect(),
        );
        let ablation_json = Json::Arr(
            ablation
                .iter()
                .map(|a| {
                    Json::obj()
                        .with("organization", a.organization.as_str().into())
                        .with("lut_delta", a.lut_delta.into())
                        .with("ff_delta", a.ff_delta.into())
                        .with("state_changed", a.state_changed.into())
                })
                .collect(),
        );
        let blob = Json::obj()
            .with("table1", area_rows_json(&t1))
            .with("table2", area_rows_json(&t2))
            .with("overhead", overhead_json)
            .with("latency", latency_json)
            .with("ablation", ablation_json);
        println!("{}", blob.pretty());
        return;
    }

    println!("## Measured results\n");
    println!("{}", render_area_table(OrganizationKind::Arbitrated, &t1));
    println!("{}", render_area_table(OrganizationKind::EventDriven, &t2));
    println!("### Overhead (E5)\n");
    println!("| org | egress | core | sync | overhead |");
    println!("|-----|--------|------|------|----------|");
    for (org, r) in &overhead {
        println!(
            "| {org} | {} | {} | {} | {:.1}% |",
            r.egress,
            r.core_slices,
            r.sync_slices,
            r.overhead_fraction * 100.0
        );
    }
    println!("\n### Latency (E6)\n");
    println!("| org | consumers | min | mean | max | deterministic |");
    println!("|-----|-----------|-----|------|-----|---------------|");
    for (org, r) in &latency {
        println!(
            "| {org} | {} | {} | {:.2} | {} | {} |",
            r.consumers, r.pooled.min, r.pooled.mean, r.pooled.max, r.all_deterministic
        );
    }
}
