//! Runs every experiment and emits the measured section of EXPERIMENTS.md
//! (markdown on stdout; `--json` for machine-readable output).
//!
//! `--jobs N` fans the independent experiment cells (area tables,
//! overhead builds, latency runs, ablation bases) across worker threads
//! (default: available parallelism); output is byte-identical for any job
//! count. `--trace <path>` streams the latency experiment's cycle events
//! as JSONL; `--metrics <path>` writes its per-run counter/histogram
//! registries.
//!
//! `--opt {0,1}` sets the middle-end level the overhead builds compile
//! at (default 0; the middle-end comparison section always reports both
//! levels). `--dump-passes` additionally prints every per-thread pass
//! report of the middle-end comparison builds.

use memsync_bench::sweep::{jobs_arg, parallel_map_slice};
use memsync_bench::*;
use memsync_core::OrganizationKind;
use memsync_trace::Json;
use std::io::Write;

fn area_rows_json(rows: &[AreaRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .with("pc", r.pc.as_str().into())
                    .with("luts", u64::from(r.luts).into())
                    .with("ffs", u64::from(r.ffs).into())
                    .with("slices", u64::from(r.slices).into())
                    .with("fmax_mhz", r.fmax_mhz.into())
            })
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let trace_path = arg_value(&args, "--trace");
    let metrics_path = arg_value(&args, "--metrics");
    let jobs = jobs_arg(&args);
    let opt = opt_arg(&args);
    let dump_passes = args.iter().any(|a| a == "--dump-passes");

    let kinds = [OrganizationKind::Arbitrated, OrganizationKind::EventDriven];
    let mut tables = parallel_map_slice(&kinds, jobs, |&k| table_area(k));
    let t2 = tables.pop().expect("two tables");
    let t1 = tables.pop().expect("two tables");
    let overhead_grid: Vec<(OrganizationKind, usize)> = kinds
        .iter()
        .flat_map(|&k| SCENARIOS.iter().map(move |&n| (k, n)))
        .collect();
    let overhead: Vec<_> = parallel_map_slice(&overhead_grid, jobs, |&(k, n)| {
        (k.to_string(), overhead_experiment_at(k, n, opt))
    });
    let me_grid = middle_end_grid();
    let middle_end = parallel_map_slice(&me_grid, jobs, |&(e, l)| middle_end_row(e, l));
    let grid = latency_grid();
    let capture = trace_path.is_some();
    let runs = parallel_map_slice(&grid, jobs, |&(kind, n)| {
        latency_run(kind, n, 200, 0xC0FFEE, capture)
    });
    let latency: Vec<_> = runs
        .iter()
        .map(|run| (run.kind.to_string(), run.result.clone()))
        .collect();
    if let Some(p) = &trace_path {
        // Deterministic merge: buffered per-run traces concatenated in
        // grid order, independent of worker completion order.
        let mut f = std::io::BufWriter::new(std::fs::File::create(p).expect("create trace file"));
        for run in &runs {
            let (bytes, _) = run.trace.as_ref().expect("capture was requested");
            f.write_all(bytes).expect("write trace file");
        }
        f.flush().expect("flush trace file");
    }
    if let Some(p) = &metrics_path {
        let metric_runs: Vec<Json> = runs
            .iter()
            .map(|run| {
                Json::obj()
                    .with("org", run.kind.to_string().as_str().into())
                    .with("consumers", run.consumers.into())
                    .with("metrics", run.registry.to_json())
            })
            .collect();
        let doc = Json::obj().with("runs", Json::Arr(metric_runs));
        std::fs::write(p, doc.pretty()).expect("write metrics file");
    }
    let bases = [2usize, 4, 7];
    let ablation: Vec<_> = parallel_map_slice(&bases, jobs, |&b| ablation_scalability(b))
        .into_iter()
        .flatten()
        .collect();

    if json {
        let overhead_json = Json::Arr(
            overhead
                .iter()
                .map(|(org, r)| {
                    Json::obj()
                        .with("org", org.as_str().into())
                        .with("egress", r.egress.into())
                        .with("core_slices", u64::from(r.core_slices).into())
                        .with("sync_slices", u64::from(r.sync_slices).into())
                        .with("total_slices", u64::from(r.total_slices).into())
                        .with("overhead_fraction", r.overhead_fraction.into())
                        .with("fmax_mhz", r.fmax_mhz.into())
                })
                .collect(),
        );
        let latency_json = Json::Arr(
            latency
                .iter()
                .map(|(org, r)| {
                    Json::obj()
                        .with("org", org.as_str().into())
                        .with("consumers", r.consumers.into())
                        .with("min", r.pooled.min.into())
                        .with("mean", r.pooled.mean.into())
                        .with("max", r.pooled.max.into())
                        .with("deterministic", r.all_deterministic.into())
                })
                .collect(),
        );
        let ablation_json = Json::Arr(
            ablation
                .iter()
                .map(|a| {
                    Json::obj()
                        .with("organization", a.organization.as_str().into())
                        .with("lut_delta", a.lut_delta.into())
                        .with("ff_delta", a.ff_delta.into())
                        .with("state_changed", a.state_changed.into())
                })
                .collect(),
        );
        let middle_end_json = Json::Arr(
            middle_end
                .iter()
                .map(|r| {
                    let mut row = Json::obj()
                        .with("egress", r.egress.into())
                        .with("level", r.level.to_string().as_str().into())
                        .with("fsm_states", r.fsm_states.into())
                        .with("memory_ops", r.memory_ops.into())
                        .with("guarded_ops", r.guarded_ops.into())
                        .with("alu_units", r.alu_units.into())
                        .with("reads_forwarded", r.reads_forwarded.into())
                        .with("cycles_per_packet", r.cycles_per_packet.into());
                    if dump_passes {
                        row = row.with(
                            "passes",
                            Json::Arr(r.pass_reports.iter().map(|p| p.to_json()).collect()),
                        );
                    }
                    row
                })
                .collect(),
        );
        let blob = Json::obj()
            .with("table1", area_rows_json(&t1))
            .with("table2", area_rows_json(&t2))
            .with("overhead", overhead_json)
            .with("latency", latency_json)
            .with("middle_end", middle_end_json)
            .with("ablation", ablation_json);
        println!("{}", blob.pretty());
        return;
    }

    println!("## Measured results\n");
    println!("{}", render_area_table(OrganizationKind::Arbitrated, &t1));
    println!("{}", render_area_table(OrganizationKind::EventDriven, &t2));
    println!("### Overhead (E5)\n");
    println!("| org | egress | core | sync | overhead |");
    println!("|-----|--------|------|------|----------|");
    for (org, r) in &overhead {
        println!(
            "| {org} | {} | {} | {} | {:.1}% |",
            r.egress,
            r.core_slices,
            r.sync_slices,
            r.overhead_fraction * 100.0
        );
    }
    println!("\n### Latency (E6)\n");
    println!("| org | consumers | min | mean | max | deterministic |");
    println!("|-----|-----------|-----|------|-----|---------------|");
    for (org, r) in &latency {
        println!(
            "| {org} | {} | {} | {:.2} | {} | {} |",
            r.consumers, r.pooled.min, r.pooled.mean, r.pooled.max, r.all_deterministic
        );
    }
    println!("\n### Optimizing middle-end (E10)\n");
    println!("| app | level | FSM states | mem ops | guarded | FUs | cycles/packet |");
    println!("|-----|-------|------------|---------|---------|-----|---------------|");
    for r in &middle_end {
        println!(
            "| forwarding_{} | {} | {} | {} | {} | {} | {:.1} |",
            r.egress,
            r.level,
            r.fsm_states,
            r.memory_ops,
            r.guarded_ops,
            r.alu_units,
            r.cycles_per_packet
        );
    }
    if dump_passes {
        println!();
        for r in &middle_end {
            for p in &r.pass_reports {
                println!(
                    "forwarding_{} thread `{}` [{}]: {} -> {} ops ({} guarded -> {}), \
                     {} -> {} states{}",
                    r.egress,
                    p.thread,
                    p.level,
                    p.ops_before,
                    p.ops_after,
                    p.guarded_ops_before,
                    p.guarded_ops_after,
                    p.states_before,
                    p.states_after,
                    if p.gated { " (gated)" } else { "" }
                );
            }
        }
    }
}
