//! Runs every experiment and emits the measured section of EXPERIMENTS.md
//! (markdown on stdout; `--json` for machine-readable output).

use memsync_bench::*;
use memsync_core::OrganizationKind;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let t1 = table_area(OrganizationKind::Arbitrated);
    let t2 = table_area(OrganizationKind::EventDriven);
    let overhead: Vec<_> = [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
        .iter()
        .flat_map(|&k| {
            SCENARIOS
                .iter()
                .map(move |&n| (k.to_string(), overhead_experiment(k, n)))
        })
        .collect();
    let latency: Vec<_> = [OrganizationKind::Arbitrated, OrganizationKind::EventDriven]
        .iter()
        .flat_map(|&k| {
            SCENARIOS
                .iter()
                .map(move |&n| (k.to_string(), latency_experiment(k, n, 200, 0xC0FFEE)))
        })
        .collect();
    let ablation: Vec<_> = [2usize, 4, 7]
        .iter()
        .flat_map(|&b| ablation_scalability(b))
        .collect();

    if json {
        let blob = serde_json::json!({
            "table1": t1, "table2": t2,
            "overhead": overhead,
            "latency": latency,
            "ablation": ablation,
        });
        println!("{}", serde_json::to_string_pretty(&blob).expect("serializable"));
        return;
    }

    println!("## Measured results\n");
    println!("{}", render_area_table(OrganizationKind::Arbitrated, &t1));
    println!("{}", render_area_table(OrganizationKind::EventDriven, &t2));
    println!("### Overhead (E5)\n");
    println!("| org | egress | core | sync | overhead |");
    println!("|-----|--------|------|------|----------|");
    for (org, r) in &overhead {
        println!(
            "| {org} | {} | {} | {} | {:.1}% |",
            r.egress, r.core_slices, r.sync_slices, r.overhead_fraction * 100.0
        );
    }
    println!("\n### Latency (E6)\n");
    println!("| org | consumers | min | mean | max | deterministic |");
    println!("|-----|-----------|-----|------|-----|---------------|");
    for (org, r) in &latency {
        println!(
            "| {org} | {} | {} | {:.2} | {} | {} |",
            r.consumers, r.pooled.min, r.pooled.mean, r.pooled.max, r.all_deterministic
        );
    }
}
