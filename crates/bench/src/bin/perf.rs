//! Self-timing harness for the simulator hot path.
//!
//! Measures sustained cycles/sec of the uninstrumented reference workload
//! (egress-4 forwarding application, arbitrated organization, Bernoulli rx
//! traffic) and records it — together with the pre-interning baseline and
//! a serial-vs-parallel sweep timing — in `BENCH_sim.json` at the repo
//! root.
//!
//! Modes:
//!
//! * default — full measurement (3 reps × 300k cycles after 50k warmup),
//!   writes `BENCH_sim.json` (`--out <path>` overrides the location);
//! * `--check` — CI smoke: a short measurement compared against the
//!   `cycles_per_sec` recorded in `BENCH_sim.json`; exits non-zero if the
//!   current build is more than 3x slower than the recorded value.

use memsync_bench::sweep::{default_jobs, parallel_map_slice};
use memsync_bench::{arg_value, latency_grid, latency_run, reference_system};
use memsync_trace::Json;
use std::time::Instant;

/// Pre-interning throughput of the reference workload on the measurement
/// host (string-keyed BTreeMap engine, release build, best of 3): the
/// denominator of `speedup_vs_baseline`.
const BASELINE_CYCLES_PER_SEC: u64 = 916_536;

/// Best-of-`reps` sustained cycles/sec over `cycles` stepped cycles,
/// after a `warmup` that fills queues and amortized buffers.
fn measure(cycles: u64, warmup: u64, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut sys = reference_system();
        for _ in 0..warmup {
            sys.step();
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            sys.step();
        }
        let rate = cycles as f64 / t0.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Wall-clock seconds for one latency sweep (the six grid cells) at the
/// given worker count.
fn time_sweep(jobs: usize) -> f64 {
    let grid = latency_grid();
    let t0 = Instant::now();
    let runs = parallel_map_slice(&grid, jobs, |&(kind, n)| {
        latency_run(kind, n, 200, 0xC0FFEE, false)
    });
    assert_eq!(runs.len(), grid.len());
    t0.elapsed().as_secs_f64()
}

fn bench_path(args: &[String]) -> String {
    arg_value(args, "--out")
        .unwrap_or_else(|| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")))
}

/// Extracts the integer following `"key":` from a flat JSON document.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = bench_path(&args);

    if args.iter().any(|a| a == "--check") {
        let doc = std::fs::read_to_string(&path).expect("BENCH_sim.json present at repo root");
        let recorded = json_u64(&doc, "cycles_per_sec").expect("cycles_per_sec recorded");
        let current = measure(100_000, 10_000, 2);
        let floor = recorded as f64 / 3.0;
        println!(
            "perf check: current {current:.0} cycles/sec, recorded {recorded}, floor {floor:.0}"
        );
        if cfg!(debug_assertions) {
            // The recorded number is a release measurement; a debug build
            // cannot meet it, so only release runs enforce the floor.
            println!("debug build: threshold not enforced");
            return;
        }
        if current < floor {
            eprintln!("perf check FAILED: more than 3x slower than recorded");
            std::process::exit(1);
        }
        println!("perf check passed");
        return;
    }

    let cores = default_jobs();
    println!("simulator self-timing (reference workload: forwarding app, arbitrated, rx p=0.1)");
    let cps = measure(300_000, 50_000, 3);
    let speedup = cps / BASELINE_CYCLES_PER_SEC as f64;
    println!("  hot path: {cps:.0} cycles/sec ({speedup:.2}x the pre-interning baseline)");
    let sweep_1 = time_sweep(1);
    let sweep_n = time_sweep(cores.max(2));
    println!(
        "  latency sweep (6 cells): jobs=1 {sweep_1:.3}s, jobs={} {sweep_n:.3}s",
        cores.max(2)
    );

    let doc = Json::obj()
        .with(
            "workload",
            "forwarding app egress=4, arbitrated organization, Bernoulli rx p=0.1, uninstrumented"
                .into(),
        )
        .with("cycles_per_rep", 300_000u64.into())
        .with("reps", 3u64.into())
        .with("baseline_cycles_per_sec", BASELINE_CYCLES_PER_SEC.into())
        .with("cycles_per_sec", (cps.round() as u64).into())
        .with(
            "speedup_vs_baseline",
            ((speedup * 100.0).round() / 100.0).into(),
        )
        .with("host_cores", (cores as u64).into())
        .with(
            "sweep_jobs1_secs",
            ((sweep_1 * 1000.0).round() / 1000.0).into(),
        )
        .with(
            "sweep_jobsN_secs",
            ((sweep_n * 1000.0).round() / 1000.0).into(),
        )
        .with("sweep_jobs", (cores.max(2) as u64).into());
    std::fs::write(&path, format!("{}\n", doc.pretty())).expect("write BENCH_sim.json");
    println!("  written to {path}");
}
