//! Regenerates **Table 2** — required area for the event-driven statically
//! scheduled memory organization (P/C = 1/2, 1/4, 1/8).

use memsync_bench::{render_area_table, table_area};
use memsync_core::OrganizationKind;

fn main() {
    let rows = table_area(OrganizationKind::EventDriven);
    println!("Table 2: Required area for event-driven statically scheduled memory organization\n");
    println!(
        "{}",
        render_area_table(OrganizationKind::EventDriven, &rows)
    );
}
