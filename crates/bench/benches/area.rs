//! Criterion bench: generation + implementation (area/timing model) cost of
//! both memory organizations across the paper's scenarios (E1-E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsync_core::{arbitrated, event_driven, spec::WrapperSpec, OrganizationKind};
use memsync_fpga::report::implement;

fn bench_wrappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrapper_implement");
    for &n in &[2usize, 4, 8] {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), n),
                &n,
                |b, &n| {
                    let spec = WrapperSpec::single_producer(n);
                    b.iter(|| {
                        let m = match kind {
                            OrganizationKind::Arbitrated => arbitrated::generate(&spec),
                            OrganizationKind::EventDriven => event_driven::generate(&spec),
                        }
                        .expect("valid spec");
                        implement(&m).expect("loop-free")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wrappers
}
criterion_main!(benches);
