//! Timing harness: generation + implementation (area/timing model) cost of
//! both memory organizations across the paper's scenarios (E1-E4).
//!
//! Criterion is unavailable offline, so this is a plain `main()` that times
//! each configuration over a fixed iteration count and prints mean
//! wall-clock per run. Run with `cargo bench --bench area`.

use memsync_core::{arbitrated, event_driven, spec::WrapperSpec, OrganizationKind};
use memsync_fpga::report::implement;
use std::time::Instant;

const ITERS: u32 = 20;

fn main() {
    println!("wrapper_implement ({ITERS} iterations each)");
    for &n in &[2usize, 4, 8] {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let spec = WrapperSpec::single_producer(n);
            let start = Instant::now();
            for _ in 0..ITERS {
                let m = match kind {
                    OrganizationKind::Arbitrated => arbitrated::generate(&spec),
                    OrganizationKind::EventDriven => event_driven::generate(&spec),
                }
                .expect("valid spec");
                std::hint::black_box(implement(&m).expect("loop-free"));
            }
            let per = start.elapsed() / ITERS;
            println!("  {kind}/{n}: {per:?} per run");
        }
    }
}
