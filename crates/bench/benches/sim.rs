//! Timing harness: cycle throughput of the behavioral wrapper models and
//! the full-system simulator (E6 substrate), plus the cost of turning the
//! metrics registry on. The uninstrumented baseline already runs through
//! `step_traced` with a `NullSink` whose `enabled()` gate skips all event
//! construction, so it doubles as the zero-overhead-tracing check.
//!
//! Criterion is unavailable offline; plain `main()` timing loops instead.
//! Run with `cargo bench --bench sim`.

use memsync_bench::latency_experiment;
use memsync_core::{Compiler, OrganizationKind};
use memsync_sim::System;
use std::time::Instant;

fn main() {
    println!("latency_experiment (15 iterations each)");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let start = Instant::now();
        for _ in 0..15 {
            std::hint::black_box(latency_experiment(kind, 8, 50, 1));
        }
        let per = start.elapsed() / 15;
        println!("  {kind}: {per:?} per run");
    }

    let src = memsync_netapp::forwarding::app_source(4);
    let mut compiler = Compiler::new(&src);
    compiler.skip_validation();
    let compiled = compiler.compile().expect("app compiles");

    let run = |instrument: bool| {
        let start = Instant::now();
        for _ in 0..15 {
            let mut sys = System::new(&compiled);
            if instrument {
                sys.enable_metrics();
            }
            sys.push_message("rx", 0x0a0a_0a40);
            for _ in 0..1000 {
                sys.step();
            }
            std::hint::black_box(sys.cycle());
        }
        start.elapsed() / 15
    };
    let baseline = run(false);
    let instrumented = run(true);
    println!("full_system_1000_cycles: {baseline:?} per run");
    println!("full_system_1000_cycles (metrics on): {instrumented:?} per run");
    let overhead = instrumented.as_secs_f64() / baseline.as_secs_f64().max(f64::MIN_POSITIVE) - 1.0;
    println!("metrics-registry overhead: {:.1}%", overhead * 100.0);
}
