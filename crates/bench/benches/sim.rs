//! Criterion bench: cycle throughput of the behavioral wrapper models and
//! the full-system simulator (E6 substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use memsync_bench::latency_experiment;
use memsync_core::{Compiler, OrganizationKind};
use memsync_sim::System;

fn bench_latency_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_experiment");
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        group.bench_function(kind.to_string(), |b| {
            b.iter(|| latency_experiment(kind, 8, 50, 1));
        });
    }
    group.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let src = memsync_netapp::forwarding::app_source(4);
    let mut compiler = Compiler::new(&src);
    compiler.skip_validation();
    let compiled = compiler.compile().expect("app compiles");
    c.bench_function("full_system_1000_cycles", |b| {
        b.iter(|| {
            let mut sys = System::new(&compiled);
            sys.push_message("rx", 0x0a0a_0a40);
            for _ in 0..1000 {
                sys.step();
            }
            sys.cycle()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_latency_experiment, bench_full_system
}
criterion_main!(benches);
