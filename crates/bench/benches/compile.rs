//! Criterion bench: end-to-end hic compilation speed (front-end, synthesis,
//! organization generation) across application sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsync_core::Compiler;
use memsync_netapp::forwarding::app_source;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_app");
    for &egress in &[2usize, 8] {
        let src = app_source(egress);
        group.bench_with_input(BenchmarkId::from_parameter(egress), &src, |b, src| {
            b.iter(|| {
                let mut compiler = Compiler::new(src.as_str());
                compiler.skip_validation();
                compiler.compile().expect("compiles")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}
criterion_main!(benches);
