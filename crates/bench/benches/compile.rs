//! Timing harness: end-to-end hic compilation speed (front-end, synthesis,
//! organization generation) across application sizes.
//!
//! Criterion is unavailable offline; plain `main()` timing loop instead.
//! Run with `cargo bench --bench compile`.

use memsync_core::Compiler;
use memsync_netapp::forwarding::app_source;
use std::time::Instant;

const ITERS: u32 = 10;

fn main() {
    println!("compile_app ({ITERS} iterations each)");
    for &egress in &[2usize, 8] {
        let src = app_source(egress);
        let start = Instant::now();
        for _ in 0..ITERS {
            let mut compiler = Compiler::new(src.as_str());
            compiler.skip_validation();
            std::hint::black_box(compiler.compile().expect("compiles"));
        }
        let per = start.elapsed() / ITERS;
        println!("  egress {egress}: {per:?} per run");
    }
}
