//! Proves the interned hot path holds its zero-allocation contract: after
//! warmup, an uninstrumented `System::step` performs no heap allocation —
//! no string-keyed map lookups, no per-cycle clones, no buffer churn.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide. The workload is fully
//! deterministic (fixed-seed Bernoulli traffic), so the allocation pattern
//! is identical on every run: the latency recorders' amortized `Vec`
//! growth lands entirely in warmup, and the measured window sees zero
//! allocations — not just "few".

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn uninstrumented_step_allocates_nothing_at_steady_state() {
    let mut sys = memsync_bench::reference_system();
    for _ in 0..50_000 {
        sys.step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "uninstrumented System::step must not touch the heap at steady state"
    );
    assert_eq!(sys.cycle(), 60_000, "the workload actually ran");
}
