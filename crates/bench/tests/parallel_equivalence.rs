//! Determinism of the parallel sweep: every harness binary must produce
//! byte-identical output with `--jobs 4` and `--jobs 1` — stdout, trace
//! files, and metrics files alike. Work-stealing changes which worker runs
//! which cell, never what the merged result looks like.

use std::path::PathBuf;
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("harness binary runs");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("memsync-par-eq-{}-{name}", std::process::id()));
    p
}

#[test]
fn latency_bin_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_latency");
    let (t1, m1) = (tmp("lat-t1.jsonl"), tmp("lat-m1.json"));
    let (t4, m4) = (tmp("lat-t4.jsonl"), tmp("lat-m4.json"));
    // Point both runs at files whose *names* differ so stdout paths are
    // compared via the file contents, then strip the path-bearing lines.
    let s1 = run(
        bin,
        &[
            "--jobs",
            "1",
            "--trace",
            t1.to_str().unwrap(),
            "--metrics",
            m1.to_str().unwrap(),
        ],
    );
    let s4 = run(
        bin,
        &[
            "--jobs",
            "4",
            "--trace",
            t4.to_str().unwrap(),
            "--metrics",
            m4.to_str().unwrap(),
        ],
    );
    let strip = |out: &[u8]| -> Vec<String> {
        String::from_utf8(out.to_vec())
            .expect("utf8 stdout")
            .lines()
            .filter(|l| !l.contains("memsync-par-eq"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(strip(&s1), strip(&s4), "stdout differs");
    assert_eq!(
        std::fs::read(&t1).unwrap(),
        std::fs::read(&t4).unwrap(),
        "trace files differ"
    );
    assert_eq!(
        std::fs::read(&m1).unwrap(),
        std::fs::read(&m4).unwrap(),
        "metrics files differ"
    );
    for p in [t1, m1, t4, m4] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn overhead_bin_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_overhead");
    let s1 = run(bin, &["--jobs", "1"]);
    let s4 = run(bin, &["--jobs", "4"]);
    assert_eq!(s1, s4);
}

#[test]
fn report_bin_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_report");
    let s1 = run(bin, &["--jobs", "1", "--json"]);
    let s4 = run(bin, &["--jobs", "4", "--json"]);
    assert_eq!(s1, s4);
}

#[test]
fn ablation_bin_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_ablation");
    let s1 = run(bin, &["--jobs", "1"]);
    let s4 = run(bin, &["--jobs", "4"]);
    assert_eq!(s1, s4);
}
