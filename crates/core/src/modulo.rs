//! Two-level modulo scheduling for the event-driven organization (§3.2).
//!
//! "Modulo scheduling happens at two levels: between different producers and
//! between different consumers of a given producer." The selection logic
//! cycles producers in round order; once a producer writes, the consumers of
//! that producer are served in their compile-time order, one slot each.

/// The static schedule: per producer, the ordered consumer slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    rows: Vec<Vec<usize>>,
}

impl ModuloSchedule {
    /// Builds a schedule from per-producer service orders.
    ///
    /// # Errors
    ///
    /// Fails if any row is empty (a producer must have at least one
    /// consumer).
    pub fn new(rows: Vec<Vec<usize>>) -> Result<Self, String> {
        if rows.is_empty() {
            return Err("schedule needs at least one producer row".into());
        }
        for (p, row) in rows.iter().enumerate() {
            if row.is_empty() {
                return Err(format!("producer {p} has no consumers in the schedule"));
            }
        }
        Ok(ModuloSchedule { rows })
    }

    /// Number of producers.
    pub fn producers(&self) -> usize {
        self.rows.len()
    }

    /// Service order of one producer.
    pub fn order_of(&self, producer: usize) -> &[usize] {
        &self.rows[producer]
    }

    /// The consumer served at `slot` of `producer`'s service window.
    pub fn consumer_at(&self, producer: usize, slot: usize) -> usize {
        self.rows[producer][slot]
    }

    /// Slots in `producer`'s window.
    pub fn window_len(&self, producer: usize) -> usize {
        self.rows[producer].len()
    }

    /// Deterministic post-write latency (in slots) until `consumer` is
    /// served after `producer` writes — the §3.2 timing guarantee. Returns
    /// `None` when the consumer is not in the producer's window.
    pub fn latency_of(&self, producer: usize, consumer: usize) -> Option<usize> {
        self.rows[producer]
            .iter()
            .position(|&c| c == consumer)
            .map(|p| p + 1)
    }
}

/// The selection-logic state machine, stepped once per cycle by the
/// simulator. The hardware in [`crate::event_driven`] implements the same
/// transition function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionLogic {
    schedule: ModuloSchedule,
    producer_ptr: usize,
    serving: Option<Serving>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Serving {
    producer: usize,
    slot: usize,
}

/// One cycle's output of the selection logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionOutput {
    /// Waiting for the producer at the pointer to write; blocking until
    /// then ("until this point the selection logic is blocking").
    AwaitingProducer {
        /// Which producer holds the window.
        producer: usize,
    },
    /// Serving a consumer slot: the consumer's read access is released this
    /// cycle.
    Serve {
        /// The producer whose write is being propagated.
        producer: usize,
        /// The consumer released this cycle.
        consumer: usize,
        /// Slot index within the window (0-based).
        slot: usize,
    },
}

impl SelectionLogic {
    /// Creates the selection logic over a schedule.
    pub fn new(schedule: ModuloSchedule) -> Self {
        SelectionLogic {
            schedule,
            producer_ptr: 0,
            serving: None,
        }
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &ModuloSchedule {
        &self.schedule
    }

    /// Steps one cycle. `producer_wrote` reports whether the producer that
    /// holds the window performed its write this cycle.
    pub fn step(&mut self, producer_wrote: bool) -> SelectionOutput {
        match self.serving {
            None => {
                let producer = self.producer_ptr;
                if producer_wrote {
                    // The write is the event that starts the consumer chain
                    // next cycle(s); slot 0 is served immediately after.
                    self.serving = Some(Serving { producer, slot: 0 });
                }
                SelectionOutput::AwaitingProducer { producer }
            }
            Some(Serving { producer, slot }) => {
                let consumer = self.schedule.consumer_at(producer, slot);
                let out = SelectionOutput::Serve {
                    producer,
                    consumer,
                    slot,
                };
                if slot + 1 == self.schedule.window_len(producer) {
                    self.serving = None;
                    self.producer_ptr = (producer + 1) % self.schedule.producers();
                } else {
                    self.serving = Some(Serving {
                        producer,
                        slot: slot + 1,
                    });
                }
                out
            }
        }
    }

    /// Which producer currently holds the window (blocking semantics: only
    /// this producer's write is accepted).
    pub fn window_producer(&self) -> usize {
        match self.serving {
            Some(s) => s.producer,
            None => self.producer_ptr,
        }
    }

    /// Whether the logic is mid-window (serving consumers).
    pub fn is_serving(&self) -> bool {
        self.serving.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_schedule() -> ModuloSchedule {
        // One producer (t1), consumers y1 (slot 0) then z1 (slot 1).
        ModuloSchedule::new(vec![vec![0, 1]]).unwrap()
    }

    #[test]
    fn figure1_order_is_y1_then_z1() {
        let mut sel = SelectionLogic::new(figure1_schedule());
        // Idle until the producer writes.
        assert_eq!(
            sel.step(false),
            SelectionOutput::AwaitingProducer { producer: 0 }
        );
        assert_eq!(
            sel.step(true),
            SelectionOutput::AwaitingProducer { producer: 0 }
        );
        // Then consumers in compile-time order.
        assert_eq!(
            sel.step(false),
            SelectionOutput::Serve {
                producer: 0,
                consumer: 0,
                slot: 0
            }
        );
        assert_eq!(
            sel.step(false),
            SelectionOutput::Serve {
                producer: 0,
                consumer: 1,
                slot: 1
            }
        );
        // Window closed; waiting for the next write.
        assert_eq!(
            sel.step(false),
            SelectionOutput::AwaitingProducer { producer: 0 }
        );
    }

    #[test]
    fn latency_is_deterministic() {
        let s = figure1_schedule();
        assert_eq!(s.latency_of(0, 0), Some(1));
        assert_eq!(s.latency_of(0, 1), Some(2));
        assert_eq!(s.latency_of(0, 7), None);
    }

    #[test]
    fn producers_rotate_modulo() {
        let s = ModuloSchedule::new(vec![vec![0], vec![1]]).unwrap();
        let mut sel = SelectionLogic::new(s);
        assert_eq!(sel.window_producer(), 0);
        sel.step(true); // producer 0 writes
        sel.step(false); // serve consumer 0
        assert_eq!(sel.window_producer(), 1, "window rotates to producer 1");
        sel.step(true); // producer 1 writes
        sel.step(false); // serve consumer 1
        assert_eq!(sel.window_producer(), 0, "and back to producer 0");
    }

    #[test]
    fn rejects_empty_rows() {
        assert!(ModuloSchedule::new(vec![]).is_err());
        assert!(ModuloSchedule::new(vec![vec![]]).is_err());
    }

    #[test]
    fn window_length_reflects_consumer_count() {
        for n in [2usize, 4, 8] {
            let s = ModuloSchedule::new(vec![(0..n).collect()]).unwrap();
            assert_eq!(s.window_len(0), n);
            let mut sel = SelectionLogic::new(s);
            sel.step(true);
            let mut served = Vec::new();
            for _ in 0..n {
                if let SelectionOutput::Serve { consumer, .. } = sel.step(false) {
                    served.push(consumer);
                }
            }
            assert_eq!(served, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn custom_service_order_respected() {
        let s = ModuloSchedule::new(vec![vec![2, 0, 1]]).unwrap();
        let mut sel = SelectionLogic::new(s);
        sel.step(true);
        let mut served = Vec::new();
        for _ in 0..3 {
            if let SelectionOutput::Serve { consumer, .. } = sel.step(false) {
                served.push(consumer);
            }
        }
        assert_eq!(served, vec![2, 0, 1]);
    }
}
