//! Generator for the **arbitrated memory organization** (§3.1).
//!
//! A wrapper around one true-dual-port BRAM adds two logical ports beyond
//! the standard pair: a guarded read port (C) and a producer write port (D).
//! Port A passes straight through to the first physical port; ports B/C/D
//! share the second physical port with priority D > C > B.
//!
//! The dependency list is a CAM-like structure built in fabric: each entry
//! holds `{base address, dependency counter, valid}` in registers, loaded
//! through a configuration port at configuration time ("this list is
//! populated at configuration time since they are determined at design time
//! using static analysis"). Every consumer pseudo-port's address is compared
//! against every entry **in parallel**, so eligibility (entry armed, counter
//! non-zero) is known before arbitration; a round-robin arbiter then picks
//! among eligible requests. A producer write requires a matching entry and
//! re-arms its counter with the producer-supplied dependency number; each
//! granted consumer read decrements it, closing the produce–consume cycle at
//! zero.
//!
//! Arbitration is pipelined: the decision (compare + round-robin) is
//! registered, and the BRAM access happens the cycle after — that is how the
//! wrapper reaches the paper's 125 MHz+ clock rates, and it is the source of
//! the non-deterministic multi-cycle consumer latency §3.1 describes. A
//! producer write arriving in the issue cycle pre-empts the port (priority
//! D > C) and the pipelined read replays.
//!
//! Flip-flop inventory of the base architecture (constant in the number of
//! pseudo-ports — the paper's constant 66 FFs):
//!
//! | structure                                                    | FFs |
//! |--------------------------------------------------------------|-----|
//! | dependency list: 4 × (9-bit address + 4-bit counter + valid) | 56  |
//! | round-robin pointer (fixed 3-bit, up to 8 consumers)         | 3   |
//! | grant pipeline: valid + consumer index                       | 4   |
//! | phase register (bus bookkeeping)                             | 3   |
//! | **total**                                                    | **66** |
//!
//! Pseudo-port scaling adds only comparators and multiplexing — LUTs.

use crate::arbiter::{self, POINTER_WIDTH};
use crate::deplist::COUNTER_WIDTH;
use crate::spec::{OrganizationKind, WrapperSpec};
use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::netlist::{addr_width, Module, NetId};

/// BRAM geometry used by the wrapper: one 18 Kb block as 512×36.
pub const BRAM_DEPTH: u32 = 512;
/// Word width of the 512-deep BRAM view.
pub const BRAM_WIDTH: u32 = 36;

/// Replicates a 1-bit net across `w` bits (mask for AND-OR selects).
fn fanout_mask(b: &mut ModuleBuilder, bit: NetId, w: u32) -> NetId {
    if w == 1 {
        bit
    } else {
        let reps: Vec<NetId> = (0..w).map(|_| bit).collect();
        b.concat(&reps, "mask")
    }
}

/// One-hot AND-OR select: OR over `items` of `(data & mask(flag))`.
fn onehot_select(b: &mut ModuleBuilder, items: &[(NetId, NetId)], name: &str) -> NetId {
    assert!(!items.is_empty(), "onehot_select needs items");
    let w = b.width(items[0].0);
    let masked: Vec<NetId> = items
        .iter()
        .map(|(data, flag)| {
            let m = fanout_mask(b, *flag, w);
            b.and(&[*data, m], "oh_and")
        })
        .collect();
    if masked.len() == 1 {
        masked[0]
    } else {
        b.or(&masked, name)
    }
}

/// Generates the arbitrated wrapper netlist for a spec.
///
/// # Errors
///
/// Returns the [`WrapperSpec::validate`] message for malformed specs.
pub fn generate(spec: &WrapperSpec) -> Result<Module, String> {
    spec.validate()?;
    let aw = spec.addr_width;
    let dw = spec.data_width;
    let entries = spec.deplist_entries;
    let ew = addr_width(entries);
    let mut b = ModuleBuilder::new(spec.module_name(OrganizationKind::Arbitrated));

    // ---- Port A: direct, single-cycle, non-dependent accesses ----
    let a_addr = b.input("a_addr", aw);
    let a_wdata = b.input("a_wdata", dw);
    let a_we = b.input("a_we", 1);
    let a_en = b.input("a_en", 1);

    // ---- Port C pseudo-ports: guarded consumer reads ----
    let c_addr: Vec<NetId> = (0..spec.consumers)
        .map(|i| b.input(&format!("c{i}_addr"), aw))
        .collect();
    let c_req: Vec<NetId> = (0..spec.consumers)
        .map(|i| b.input(&format!("c{i}_req"), 1))
        .collect();

    // ---- Port D pseudo-ports: producer writes ----
    let d_addr: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("d{j}_addr"), aw))
        .collect();
    let d_wdata: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("d{j}_wdata"), dw))
        .collect();
    let d_req: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("d{j}_req"), 1))
        .collect();
    let d_dep: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("d{j}_dep"), COUNTER_WIDTH))
        .collect();

    // ---- configuration port (design-time population of the list) ----
    let cfg_we = b.input("cfg_we", 1);
    let cfg_index = b.input("cfg_index", ew);
    let cfg_key = b.input("cfg_key", aw);

    // ---- Port B (optional background port) ----
    let port_b = spec.with_port_b.then(|| {
        (
            b.input("b_addr", aw),
            b.input("b_wdata", dw),
            b.input("b_we", 1),
            b.input("b_req", 1),
        )
    });

    // ---- state: dependency-list entries, RR pointer, grant pipe, phase ----
    let key_q: Vec<NetId> = (0..entries)
        .map(|e| b.net(&format!("dl{e}_key"), aw))
        .collect();
    let cnt_q: Vec<NetId> = (0..entries)
        .map(|e| b.net(&format!("dl{e}_cnt"), COUNTER_WIDTH))
        .collect();
    let val_q: Vec<NetId> = (0..entries)
        .map(|e| b.net(&format!("dl{e}_val"), 1))
        .collect();
    let rr_ptr = b.net("rr_ptr", POINTER_WIDTH);
    let pipe_valid = b.net("pipe_valid", 1);
    let pipe_index = b.net("pipe_index", POINTER_WIDTH);
    let phase = b.net("phase", 3);

    // ---- producer selection: fixed priority (writes are urgent & rare) ----
    let any_d = if d_req.len() == 1 {
        d_req[0]
    } else {
        b.or(&d_req, "any_d")
    };
    let mut d_win: Vec<NetId> = vec![d_req[0]];
    for j in 1..spec.producers {
        let before = if j == 1 {
            d_req[0]
        } else {
            b.or(&d_req[0..j], "d_before")
        };
        let nb = b.not(before, "nd");
        d_win.push(b.and(&[d_req[j], nb], &format!("d_win{j}")));
    }
    let d_pairs: Vec<(NetId, NetId)> = d_addr
        .iter()
        .zip(d_win.iter())
        .map(|(a, w)| (*a, *w))
        .collect();
    let d_sel_addr = onehot_select(&mut b, &d_pairs, "d_sel_addr");
    let dw_pairs: Vec<(NetId, NetId)> = d_wdata
        .iter()
        .zip(d_win.iter())
        .map(|(a, w)| (*a, *w))
        .collect();
    let d_sel_wdata = onehot_select(&mut b, &dw_pairs, "d_sel_wdata");
    let dd_pairs: Vec<(NetId, NetId)> = d_dep
        .iter()
        .zip(d_win.iter())
        .map(|(a, w)| (*a, *w))
        .collect();
    let d_sel_dep = onehot_select(&mut b, &dd_pairs, "d_sel_dep");

    // Producer-side entry match (parallel comparators).
    let d_match_e: Vec<NetId> = (0..entries as usize)
        .map(|e| {
            let eq = b.eq(d_sel_addr, key_q[e], "d_cmp");
            b.and(&[eq, val_q[e]], &format!("d_match{e}"))
        })
        .collect();
    let d_match = if entries == 1 {
        d_match_e[0]
    } else {
        b.or(&d_match_e, "d_match_any")
    };
    let d_fire = b.and(&[any_d, d_match], "d_fire");

    // ---- consumer eligibility: all addresses × all entries in parallel ----
    // Counter-nonzero flags (shared across consumers).
    let zero_cnt = b.constant(0, COUNTER_WIDTH, "cnt0");
    let cnt_nz: Vec<NetId> = (0..entries as usize)
        .map(|e| b.ne(cnt_q[e], zero_cnt, &format!("cnt_nz{e}")))
        .collect();
    // match_ie = compare && counter != 0 && valid — one fused gate per
    // (consumer, entry) pair — and eligible_i over the entry hits.
    let mut match_ie: Vec<Vec<NetId>> = Vec::with_capacity(spec.consumers);
    let mut eligible: Vec<NetId> = Vec::with_capacity(spec.consumers);
    for i in 0..spec.consumers {
        let mut row = Vec::with_capacity(entries as usize);
        let mut hit_terms = Vec::with_capacity(entries as usize);
        for e in 0..entries as usize {
            let eq = b.eq(c_addr[i], key_q[e], "c_cmp");
            let m = b.and(&[eq, cnt_nz[e], val_q[e]], &format!("m_{i}_{e}"));
            hit_terms.push(m);
            row.push(m);
        }
        match_ie.push(row);
        let hit = if hit_terms.len() == 1 {
            hit_terms[0]
        } else {
            b.or(&hit_terms, "c_hit")
        };
        eligible.push(b.and(&[c_req[i], hit], &format!("eligible{i}")));
    }

    // ---- decision stage: round-robin arbitration among eligible ----
    // A new decision is taken only when no producer is writing and the
    // grant pipeline is empty (one access in flight at a time — the bus
    // turnaround the shared read-data bus imposes).
    let arb = arbiter::generate_into(&mut b, &eligible, rr_ptr);
    let no_d = b.not(any_d, "no_d");
    let pipe_free = b.not(pipe_valid, "pipe_free");
    let new_grant = b.and(&[arb.any, no_d, pipe_free], "new_grant");

    // ---- issue stage: the registered winner accesses the BRAM ----
    // A colliding producer write pre-empts the port; the read replays.
    let c_issue = b.and(&[pipe_valid, no_d], "c_issue");
    let c_grant: Vec<NetId> = (0..spec.consumers)
        .map(|i| {
            let ii = b.constant(i as u64, POINTER_WIDTH, "gidx");
            let is_i = b.eq(pipe_index, ii, "g_is");
            b.and(&[c_issue, is_i], &format!("c{i}_grant_w"))
        })
        .collect();
    // The granted consumer still presents its address (blocking read).
    let c_sel_addr = if spec.consumers == 1 {
        c_addr[0]
    } else {
        let sel = b.slice(pipe_index, POINTER_WIDTH - 1, 0, "caddr_sel");
        b.mux(sel, &c_addr, "c_sel_addr")
    };

    // Pipeline registers.
    let replay = b.and(&[pipe_valid, any_d], "replay");
    let pipe_valid_next = b.or(&[new_grant, replay], "pipe_valid_next");
    b.register_into(pipe_valid_next, pipe_valid, 0);
    let pipe_index_next = b.mux(new_grant, &[pipe_index, arb.index], "pipe_index_next");
    b.register_into(pipe_index_next, pipe_index, 0);

    // The round-robin pointer advances from the *registered* winner at
    // issue time, keeping the increment off the decision-cycle path.
    let nc = spec.consumers;
    let one_ptr = b.constant(1, POINTER_WIDTH, "one_ptr");
    let ptr_inc = b.add(pipe_index, one_ptr, "ptr_inc2");
    let ptr_wrapped = if nc.is_power_of_two() && nc > 1 {
        let mask = b.constant((nc - 1) as u64, POINTER_WIDTH, "ptr_mask2");
        b.and(&[ptr_inc, mask], "ptr_wrap2")
    } else {
        let nn = b.constant(nc as u64, POINTER_WIDTH, "nc_const");
        let at_n = b.eq(ptr_inc, nn, "at_nc");
        let z = b.constant(0, POINTER_WIDTH, "zero_ptr");
        b.mux(at_n, &[ptr_inc, z], "ptr_wrap2")
    };

    // ---- dependency-list entry updates ----
    // dec_e: the issued read's address matches entry e (recomputed at
    // issue time against the selected address).
    // arm_e: the producer write matched entry e.
    let one_cnt = b.constant(1, COUNTER_WIDTH, "cnt1");
    for e in 0..entries as usize {
        let eq_issue = b.eq(c_sel_addr, key_q[e], "iss_cmp");
        let dec_e = b.and(&[c_issue, eq_issue, val_q[e]], &format!("dec{e}"));
        let arm_e = b.and(&[d_fire, d_match_e[e]], &format!("arm{e}"));
        let cnt_dec = b.sub(cnt_q[e], one_cnt, "cnt_dec");
        let cnt_next0 = b.mux(dec_e, &[cnt_q[e], cnt_dec], "cnt_n0");
        let cnt_next = b.mux(arm_e, &[cnt_next0, d_sel_dep], "cnt_n");
        b.register_into(cnt_next, cnt_q[e], 0);
        // Keys and valid bits are written through the configuration port.
        let is_e = {
            let ee = b.constant(e as u64, ew, "cfg_e");
            b.eq(cfg_index, ee, "cfg_is")
        };
        let cfg_hit = b.and(&[cfg_we, is_e], "cfg_hit");
        let key_next = b.mux(cfg_hit, &[key_q[e], cfg_key], "key_n");
        b.register_into(key_next, key_q[e], 0);
        let one1 = b.constant(1, 1, "one1");
        let val_next = b.mux(cfg_hit, &[val_q[e], one1], "val_n");
        b.register_into(val_next, val_q[e], 0);
    }

    // ---- port B gating (lowest priority) ----
    let b_fire = port_b.map(|(_, _, _, b_req)| {
        let no_c = b.not(c_issue, "no_c");
        b.and(&[b_req, no_d, no_c], "b_fire")
    });

    // ---- physical BRAM ----
    let pad = b.constant(0, BRAM_WIDTH - dw, "pad");
    let a_addr9 = b.slice(a_addr, addr_width(BRAM_DEPTH) - 1, 0, "a_addr9");
    let a_din36 = b.concat(&[pad, a_wdata], "a_din36");

    // Shared-port selection: D > C > B.
    let mut p1_addr = b.mux(d_fire, &[c_sel_addr, d_sel_addr], "p1_addr_sel");
    let mut p1_din = d_sel_wdata;
    let mut p1_we = d_fire;
    let mut p1_en = b.or(&[d_fire, c_issue], "p1_en");
    if let Some((b_addr, b_wdata, b_we, _)) = port_b {
        let bf = b_fire.expect("b_fire exists when port B present");
        p1_addr = b.mux(bf, &[p1_addr, b_addr], "p1_addr_b");
        p1_din = b.mux(bf, &[p1_din, b_wdata], "p1_din_b");
        let bwe = b.and(&[bf, b_we], "b_we_f");
        p1_we = b.or(&[p1_we, bwe], "p1_we_b");
        p1_en = b.or(&[p1_en, bf], "p1_en_b");
    }
    let p1_addr9 = b.slice(p1_addr, addr_width(BRAM_DEPTH) - 1, 0, "p1_addr9");
    let p1_din36 = b.concat(&[pad, p1_din], "p1_din36");

    let (a_dout36, p1_dout36) = b.bram(
        BRAM_DEPTH, BRAM_WIDTH, a_addr9, a_din36, a_we, a_en, p1_addr9, p1_din36, p1_we, p1_en,
        "bram",
    );
    let a_rdata = b.slice(a_dout36, dw - 1, 0, "a_rdata_w");
    let c_rdata = b.slice(p1_dout36, dw - 1, 0, "c_rdata_w");

    // ---- state updates ----
    // The pointer advances past the served consumer at issue time.
    let rr_next = b.mux(c_issue, &[rr_ptr, ptr_wrapped], "rr_next");
    b.register_into(rr_next, rr_ptr, 0);
    let zero1 = b.constant(0, 1, "z1");
    let b_bit = b_fire.unwrap_or(zero1);
    let phase_next = b.concat(&[b_bit, d_fire, c_issue], "phase_next");
    b.register_into(phase_next, phase, 0);

    // ---- outputs ----
    b.output("a_rdata", a_rdata);
    // The read-data bus is routed to every consumer pseudo-port; the
    // per-consumer outputs model the physical fanout of the shared bus.
    b.output("c_rdata", c_rdata);
    for i in 0..spec.consumers {
        b.output(&format!("c{i}_rdata"), c_rdata);
    }
    for (i, g) in c_grant.iter().enumerate() {
        b.output(&format!("c{i}_grant"), *g);
    }
    for (j, win) in d_win.iter().enumerate() {
        let g = b.and(&[*win, d_fire], &format!("d{j}_grant_w"));
        b.output(&format!("d{j}_grant"), g);
    }
    if port_b.is_some() {
        b.output("b_grant", b_fire.expect("port B fire"));
        b.output("b_rdata", c_rdata);
    }
    b.output("phase_dbg", phase);

    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_fpga::report::implement;
    use memsync_rtl::validate::validate;

    fn module(consumers: usize) -> Module {
        generate(&WrapperSpec::single_producer(consumers)).expect("generate")
    }

    #[test]
    fn validates_for_all_paper_cases() {
        for n in [2usize, 4, 8] {
            let m = module(n);
            validate(&m).unwrap_or_else(|e| panic!("n={n}: {e:?}"));
        }
    }

    #[test]
    fn flip_flops_constant_at_66() {
        for n in [2usize, 4, 8] {
            let r = implement(&module(n)).unwrap();
            assert_eq!(
                r.ffs, 66,
                "n={n}: the base architecture requires 66 flip-flops"
            );
        }
    }

    #[test]
    fn luts_grow_with_consumers() {
        let luts: Vec<u32> = [2usize, 4, 8]
            .iter()
            .map(|&n| implement(&module(n)).unwrap().luts)
            .collect();
        assert!(luts[0] < luts[1] && luts[1] < luts[2], "{luts:?}");
    }

    #[test]
    fn uses_exactly_one_bram() {
        let r = implement(&module(4)).unwrap();
        assert_eq!(r.brams, 1);
    }

    #[test]
    fn fmax_degrades_with_consumers() {
        let f: Vec<f64> = [2usize, 4, 8]
            .iter()
            .map(|&n| implement(&module(n)).unwrap().timing.fmax_mhz)
            .collect();
        assert!(f[0] > f[1] && f[1] > f[2], "{f:?}");
    }

    #[test]
    fn exposes_all_pseudo_ports() {
        let m = module(3);
        for i in 0..3 {
            assert!(m.port(&format!("c{i}_addr")).is_some());
            assert!(m.port(&format!("c{i}_grant")).is_some());
            assert!(m.port(&format!("c{i}_rdata")).is_some());
        }
        assert!(m.port("d0_addr").is_some());
        assert!(m.port("d0_dep").is_some());
        assert!(m.port("cfg_we").is_some(), "configuration port present");
        assert!(m.port("a_rdata").is_some());
        assert!(m.port("b_grant").is_none(), "port B not exposed by default");
    }

    #[test]
    fn port_b_optional() {
        let mut spec = WrapperSpec::single_producer(2);
        spec.with_port_b = true;
        let m = generate(&spec).unwrap();
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(m.port("b_grant").is_some());
        // Port B adds muxing but no flip-flops.
        let r = implement(&m).unwrap();
        assert_eq!(r.ffs, 66);
    }

    #[test]
    fn rejects_invalid_spec() {
        assert!(generate(&WrapperSpec::single_producer(0)).is_err());
    }

    #[test]
    fn multi_producer_wrapper_validates() {
        let spec = WrapperSpec {
            producers: 3,
            consumers: 4,
            deplist_entries: 4,
            data_width: 32,
            addr_width: 9,
            with_port_b: false,
            service_order: vec![vec![0, 1], vec![2], vec![3]],
        };
        let m = generate(&spec).unwrap();
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        // Extra producers add muxing, not flip-flops.
        assert_eq!(implement(&m).unwrap().ffs, 66);
    }
}
