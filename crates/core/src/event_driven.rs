//! Generator for the **event-driven statically scheduled memory
//! organization** (§3.2).
//!
//! Port A behaves as in the arbitrated organization; the second physical
//! port sits behind a static mux/demux network driven by selection logic
//! implementing two-level modulo scheduling (see [`crate::modulo`]). The
//! producer's write is the event: once it lands, the consumers of that
//! producer are released one per cycle in their compile-time order, each
//! receiving a one-cycle `c{i}_event` pulse aligned with valid read data on
//! the shared `c_rdata` bus. Post-write timing is therefore exact — the
//! advantage over the arbitrated organization — but adding a consumer means
//! changing both the mux network and the thread state machines.
//!
//! Flip-flop inventory: producer pointer (3), current producer (3), slot
//! counter (3), delayed slot (3), serving/valid flags (2) — 14 FFs,
//! independent of the pseudo-port counts.

use crate::arbiter::POINTER_WIDTH;
use crate::arbitrated::{BRAM_DEPTH, BRAM_WIDTH};
use crate::modulo::ModuloSchedule;
use crate::spec::{OrganizationKind, WrapperSpec};
use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::netlist::{addr_width, Module, NetId};

/// Generates the event-driven wrapper netlist for a spec.
///
/// # Errors
///
/// Returns the [`WrapperSpec::validate`] message for malformed specs.
pub fn generate(spec: &WrapperSpec) -> Result<Module, String> {
    spec.validate()?;
    let schedule = ModuloSchedule::new(spec.service_order.clone())?;
    let aw = spec.addr_width;
    let dw = spec.data_width;
    let sloww = POINTER_WIDTH; // slot counter width (≤ 8 consumers)
    let mut b = ModuleBuilder::new(spec.module_name(OrganizationKind::EventDriven));

    // ---- Port A: direct ----
    let a_addr = b.input("a_addr", aw);
    let a_wdata = b.input("a_wdata", dw);
    let a_we = b.input("a_we", 1);
    let a_en = b.input("a_en", 1);

    // ---- producer pseudo-ports ----
    let p_addr: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("p{j}_addr"), aw))
        .collect();
    let p_wdata: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("p{j}_wdata"), dw))
        .collect();
    let p_req: Vec<NetId> = (0..spec.producers)
        .map(|j| b.input(&format!("p{j}_req"), 1))
        .collect();

    // ---- consumer read interface ----
    // "the consumer read accesses are initiated only when the selection
    // logic generates the corresponding slot number": when its slot
    // arrives, the served consumer presents its read address and asserts
    // its ack, which gates the slot advance. The address network into the
    // BRAM port therefore scales with the number of consumers (the
    // multiplexer layer labeled `c` in Figure 3).
    let c_addr_in: Vec<NetId> = (0..spec.consumers)
        .map(|i| b.input(&format!("c{i}_addr"), aw))
        .collect();
    let c_ack: Vec<NetId> = (0..spec.consumers)
        .map(|i| b.input(&format!("c{i}_ack"), 1))
        .collect();

    // ---- selection-logic state ----
    let prod_ptr = b.net("prod_ptr", POINTER_WIDTH);
    let cur_prod = b.net("cur_prod", POINTER_WIDTH);
    let slot = b.net("slot", sloww);
    let slot_d = b.net("slot_d", sloww);
    let serving = b.net("serving", 1);
    let valid_d = b.net("valid_d", 1);

    // The producer holding the window is prod_ptr when idle, cur_prod when
    // serving; only that producer's request is accepted (blocking).
    let window_prod = b.mux(serving, &[prod_ptr, cur_prod], "window_prod");
    let sel_req = mux_by_index(&mut b, window_prod, &p_req, "sel_req");
    let sel_addr = mux_by_index(&mut b, window_prod, &p_addr, "sel_addr");
    let sel_wdata = mux_by_index(&mut b, window_prod, &p_wdata, "sel_wdata");

    let not_serving = b.not(serving, "not_serving");
    let p_fire = b.and(&[sel_req, not_serving], "p_fire");

    // Window length of the current producer (compile-time ROM).
    let window_len = rom_by_index(
        &mut b,
        window_prod,
        &(0..spec.producers)
            .map(|p| schedule.window_len(p) as u64)
            .collect::<Vec<_>>(),
        sloww,
        "window_len",
    );

    // The consumer currently addressed by the slot (compile-time ROM) and
    // its acknowledge, which gates the slot advance.
    let slot_consumer = schedule_rom(&mut b, &schedule, cur_prod, slot, "slot_consumer");
    let served_ack = if spec.consumers == 1 {
        c_ack[0]
    } else {
        let sel = b.slice(slot_consumer, POINTER_WIDTH - 1, 0, "ack_sel");
        b.mux(sel, &c_ack, "served_ack")
    };

    // Slot advance while serving (held until the served consumer acks).
    let one = b.constant(1, sloww, "one_s");
    let slot_inc = b.add(slot, one, "slot_inc");
    let last_slot = {
        let sl1 = b.add(slot, one, "slot_p1");
        let at_end = b.eq(sl1, window_len, "at_end");
        b.and(&[at_end, served_ack], "last_slot")
    };
    let zero_s = b.constant(0, sloww, "zero_s");
    // serving': start on p_fire; stop after the last acked slot.
    let not_last = b.not(last_slot, "not_last");
    let keep = b.and(&[serving, not_last], "keep_serving");
    let serving_next = b.or(&[p_fire, keep], "serving_next");
    let slot_step = b.mux(served_ack, &[slot, slot_inc], "slot_step");
    let slot_next0 = b.mux(serving, &[zero_s, slot_step], "slot_next0");
    let slot_next = b.mux(p_fire, &[slot_next0, zero_s], "slot_next");

    // Producer pointer rotates after the window closes.
    let window_done = b.and(&[serving, last_slot], "window_done");
    let ptr_inc = {
        let one3 = b.constant(1, POINTER_WIDTH, "one3");
        let inc = b.add(prod_ptr, one3, "ptr_inc");
        if spec.producers.is_power_of_two() && spec.producers > 1 {
            let mask = b.constant((spec.producers - 1) as u64, POINTER_WIDTH, "pmask");
            b.and(&[inc, mask], "ptr_wrap")
        } else {
            let nn = b.constant(spec.producers as u64, POINTER_WIDTH, "pn");
            let at_n = b.eq(inc, nn, "at_pn");
            let z = b.constant(0, POINTER_WIDTH, "pz");
            b.mux(at_n, &[inc, z], "ptr_wrap")
        }
    };
    let prod_ptr_next = b.mux(window_done, &[prod_ptr, ptr_inc], "prod_ptr_next");

    // Latch producer identity at the write.
    let cur_prod_next = b.mux(p_fire, &[cur_prod, window_prod], "cur_prod_next");

    // ---- physical BRAM ----
    let pad = b.constant(0, BRAM_WIDTH - dw, "pad");
    let a_addr9 = b.slice(a_addr, addr_width(BRAM_DEPTH) - 1, 0, "a_addr9");
    let a_din36 = b.concat(&[pad, a_wdata], "a_din36");
    // Port 1: write on p_fire at the producer's address; read at the served
    // consumer's address when it initiates (the consumer-scaled mux layer).
    let c_sel_addr = if spec.consumers == 1 {
        c_addr_in[0]
    } else {
        let sel = b.slice(slot_consumer, POINTER_WIDTH - 1, 0, "caddr_sel");
        b.mux(sel, &c_addr_in, "c_sel_addr")
    };
    let p1_addr = b.mux(p_fire, &[c_sel_addr, sel_addr], "p1_addr");
    let p1_addr9 = b.slice(p1_addr, addr_width(BRAM_DEPTH) - 1, 0, "p1_addr9");
    let p1_din36 = b.concat(&[pad, sel_wdata], "p1_din36");
    let c_read = b.and(&[serving, served_ack], "c_read");
    let p1_en = b.or(&[p_fire, c_read], "p1_en");
    let (a_dout36, p1_dout36) = b.bram(
        BRAM_DEPTH, BRAM_WIDTH, a_addr9, a_din36, a_we, a_en, p1_addr9, p1_din36, p_fire, p1_en,
        "bram",
    );
    let a_rdata = b.slice(a_dout36, dw - 1, 0, "a_rdata_w");
    let c_rdata = b.slice(p1_dout36, dw - 1, 0, "c_rdata_w");

    // ---- registers ----
    b.register_into(prod_ptr_next, prod_ptr, 0);
    b.register_into(cur_prod_next, cur_prod, 0);
    b.register_into(slot_next, slot, 0);
    b.register_into(serving_next, serving, 0);
    // Events are aligned with data: BRAM reads have one cycle of latency,
    // so the slot (and validity) are delayed one cycle to form the event.
    b.register_into(slot, slot_d, 0);
    b.register_into(serving, valid_d, 0);

    // ---- outputs ----
    b.output("a_rdata", a_rdata);
    // The read-data bus fans out to every consumer.
    b.output("c_rdata", c_rdata);
    for i in 0..spec.consumers {
        b.output(&format!("c{i}_rdata"), c_rdata);
    }
    // Per-consumer events: consumer = schedule ROM[cur_prod][slot_d].
    let served_consumer = schedule_rom(&mut b, &schedule, cur_prod, slot_d, "served");
    for i in 0..spec.consumers {
        let ii = b.constant(i as u64, POINTER_WIDTH, "evi");
        let hit = b.eq(served_consumer, ii, "ev_hit");
        let ev = b.and(&[hit, valid_d], &format!("c{i}_event_w"));
        b.output(&format!("c{i}_event"), ev);
    }
    for j in 0..spec.producers {
        let jj = b.constant(j as u64, POINTER_WIDTH, "gj");
        let is_j = b.eq(window_prod, jj, "g_is");
        let g = b.and(&[p_fire, is_j], &format!("p{j}_grant_w"));
        b.output(&format!("p{j}_grant"), g);
    }
    b.output("serving_dbg", serving);

    Ok(b.finish())
}

/// N-way mux of nets by a 3-bit index.
fn mux_by_index(b: &mut ModuleBuilder, index: NetId, data: &[NetId], name: &str) -> NetId {
    if data.len() == 1 {
        data[0]
    } else {
        b.mux(index, data, name)
    }
}

/// N-way mux of constants by a 3-bit index.
fn rom_by_index(
    b: &mut ModuleBuilder,
    index: NetId,
    values: &[u64],
    width: u32,
    name: &str,
) -> NetId {
    let consts: Vec<NetId> = values
        .iter()
        .map(|&v| b.constant(v, width, "romk"))
        .collect();
    mux_by_index(b, index, &consts, name)
}

/// The compile-time schedule ROM: consumer index served at
/// `(producer, slot)`.
fn schedule_rom(
    b: &mut ModuleBuilder,
    schedule: &ModuloSchedule,
    producer: NetId,
    slot: NetId,
    name: &str,
) -> NetId {
    let rows: Vec<NetId> = (0..schedule.producers())
        .map(|p| {
            let vals: Vec<u64> = schedule.order_of(p).iter().map(|&c| c as u64).collect();
            rom_by_index(b, slot, &vals, POINTER_WIDTH, "sched_row")
        })
        .collect();
    mux_by_index(b, producer, &rows, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_fpga::report::implement;
    use memsync_rtl::validate::validate;

    fn module(consumers: usize) -> Module {
        generate(&WrapperSpec::single_producer(consumers)).expect("generate")
    }

    #[test]
    fn validates_for_all_paper_cases() {
        for n in [2usize, 4, 8] {
            let m = module(n);
            validate(&m).unwrap_or_else(|e| panic!("n={n}: {e:?}"));
        }
    }

    #[test]
    fn luts_grow_with_consumers() {
        let luts: Vec<u32> = [2usize, 4, 8]
            .iter()
            .map(|&n| implement(&module(n)).unwrap().luts)
            .collect();
        assert!(luts[0] < luts[1] && luts[1] < luts[2], "{luts:?}");
    }

    #[test]
    fn fmax_beats_arbitrated_at_every_point() {
        for n in [2usize, 4, 8] {
            let evt = implement(&module(n)).unwrap().timing.fmax_mhz;
            let arb =
                implement(&crate::arbitrated::generate(&WrapperSpec::single_producer(n)).unwrap())
                    .unwrap()
                    .timing
                    .fmax_mhz;
            assert!(
                evt > arb,
                "n={n}: event-driven {evt:.1} MHz must beat arbitrated {arb:.1} MHz"
            );
        }
    }

    #[test]
    fn fewer_ffs_than_arbitrated() {
        // No CAM storage: the static organization carries far fewer FFs.
        let r = implement(&module(8)).unwrap();
        assert!(r.ffs < 66, "event-driven ffs {} < arbitrated 66", r.ffs);
        assert!(r.ffs >= 10, "selection logic state present");
    }

    #[test]
    fn uses_one_bram() {
        assert_eq!(implement(&module(4)).unwrap().brams, 1);
    }

    #[test]
    fn exposes_event_ports() {
        let m = module(3);
        for i in 0..3 {
            assert!(m.port(&format!("c{i}_event")).is_some());
        }
        assert!(m.port("p0_grant").is_some());
        assert!(m.port("c_rdata").is_some());
    }

    #[test]
    fn custom_service_order_accepted() {
        let mut spec = WrapperSpec::single_producer(3);
        spec.service_order = vec![vec![2, 0, 1]];
        let m = generate(&spec).unwrap();
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn multi_producer_wrapper_validates() {
        let spec = WrapperSpec {
            producers: 2,
            consumers: 4,
            deplist_entries: 4,
            data_width: 32,
            addr_width: 9,
            with_port_b: false,
            service_order: vec![vec![0, 1], vec![2, 3]],
        };
        let m = generate(&spec).unwrap();
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        let r = implement(&m).unwrap();
        assert!(r.timing.fmax_mhz > 100.0);
    }
}
