//! # memsync-core — memory-centric thread synchronization
//!
//! The paper's contribution: two automatically generated memory
//! organizations that enforce inter-thread memory dependencies in the
//! memory controllers of on-chip BRAMs.
//!
//! * [`arbitrated`] — §3.1: CAM-backed dependency list, round-robin
//!   arbitration, dynamic scheduling (scalable, non-deterministic latency);
//! * [`event_driven`] — §3.2: modulo-scheduled selection logic and a
//!   producer-write event chained through consumers in compile-time order
//!   (deterministic latency, thread FSMs must change to add consumers);
//! * [`deplist`] / [`arbiter`] / [`modulo`] — the behavioral building
//!   blocks shared with the simulator;
//! * [`alloc`] — variable→BRAM allocation and port-class assignment;
//! * [`flow`] — the end-to-end compiler: hic source → analysis →
//!   synthesis → organization netlists → area/timing report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod arbiter;
pub mod arbitrated;
pub mod deplist;
pub mod event_driven;
pub mod flow;
pub mod modulo;
pub mod report;
pub mod spec;

pub use flow::{CompiledSystem, Compiler};
pub use memsync_synth::opt::{OptLevel, PassReport};
pub use spec::{OrganizationKind, WrapperSpec};
