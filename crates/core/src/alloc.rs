//! Memory allocation: hic variables → BRAM banks, base addresses, and
//! wrapper port classes.
//!
//! Implements the §3 design step: "the memory allocation process takes into
//! account available physical memory size (eg: BRAM size of 18 Kb) and
//! number of ports (eg: dual ports on each BRAM)". Variables guarded by
//! dependencies are packed into *sync banks* fronted by one of the two
//! memory organizations; thread-private arrays and large variables are
//! packed into private banks reached through port A.

use crate::deplist::COUNTER_WIDTH;
use crate::spec::WrapperSpec;
use memsync_hic::depgraph::MemoryAccessGraph;
use memsync_hic::sema::Analysis;
use memsync_hic::Program;
use memsync_synth::ir::{MemBinding, PortClass};
use std::collections::BTreeMap;

/// Words per bank (one 18 Kb BRAM in its 512×36 view).
pub const BANK_WORDS: u32 = 512;

/// One guarded word in a sync bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedVar {
    /// Producing thread.
    pub producer_thread: String,
    /// Variable name (producer side).
    pub var: String,
    /// Dependency id guarding it.
    pub dep: String,
    /// Base address within the bank.
    pub base_addr: u32,
    /// Dependency number (consumer count).
    pub dep_number: u8,
}

/// A BRAM fronted by a synchronization wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncBank {
    /// Bank name (used for module naming).
    pub name: String,
    /// Producer threads, in pseudo-port order (port D / selection window).
    pub producers: Vec<String>,
    /// Consumer threads, in pseudo-port order (port C / event outputs).
    pub consumers: Vec<String>,
    /// Guarded words.
    pub guarded: Vec<GuardedVar>,
    /// Service order rows (consumer pseudo-port indices per producer),
    /// derived from the `#consumer` pragma order.
    pub service_order: Vec<Vec<usize>>,
}

impl SyncBank {
    /// Wrapper spec for this bank.
    pub fn wrapper_spec(&self) -> WrapperSpec {
        WrapperSpec {
            producers: self.producers.len(),
            consumers: self.consumers.len(),
            deplist_entries: (self.guarded.len() as u32)
                .max(1)
                .next_power_of_two()
                .max(4),
            data_width: 32,
            addr_width: 9,
            with_port_b: false,
            service_order: self.service_order.clone(),
        }
    }

    /// Pseudo-port index of a consumer thread.
    pub fn consumer_port(&self, thread: &str) -> Option<usize> {
        self.consumers.iter().position(|t| t == thread)
    }

    /// Pseudo-port index of a producer thread.
    pub fn producer_port(&self, thread: &str) -> Option<usize> {
        self.producers.iter().position(|t| t == thread)
    }

    /// Whether a guarded address belongs to this bank.
    pub fn owns_addr(&self, addr: u32) -> bool {
        self.guarded.iter().any(|g| g.base_addr == addr)
    }
}

/// A private (port A) bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateBank {
    /// Owning thread.
    pub thread: String,
    /// `(var, base address, words)` allocations.
    pub vars: Vec<(String, u32, u32)>,
    /// Words used.
    pub used_words: u32,
}

/// The full allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationPlan {
    /// Synchronization banks (usually one; per-BRAM basis as in §3).
    pub sync_banks: Vec<SyncBank>,
    /// Private port-A banks, one per thread that needs memory.
    pub private_banks: Vec<PrivateBank>,
    /// Memory residency per thread, consumed by the synthesizer.
    pub bindings: BTreeMap<String, MemBinding>,
}

impl AllocationPlan {
    /// Total 18 Kb BRAMs the plan occupies.
    pub fn bram_count(&self) -> u32 {
        (self.sync_banks.len() + self.private_banks.len()) as u32
    }

    /// Binding for one thread (empty all-register binding if absent).
    pub fn binding_for(&self, thread: &str) -> MemBinding {
        self.bindings.get(thread).cloned().unwrap_or_default()
    }
}

/// Allocates memory for a program.
///
/// # Errors
///
/// Fails when a dependency has more consumers than the counter supports,
/// or a single thread's private data exceeds the bank capacity budget.
pub fn allocate(program: &Program, analysis: &Analysis) -> Result<AllocationPlan, String> {
    let mag = MemoryAccessGraph::build(program, analysis);
    let mut bindings: BTreeMap<String, MemBinding> = BTreeMap::new();
    let mut sync_banks: Vec<SyncBank> = Vec::new();

    // ---- sync bank(s): one per group of dependencies, packed greedily ----
    if !analysis.dependencies.is_empty() {
        let mut bank = SyncBank {
            name: "sync0".to_owned(),
            producers: Vec::new(),
            consumers: Vec::new(),
            guarded: Vec::new(),
            service_order: Vec::new(),
        };
        // Producers must hold the event-driven selection window in dataflow
        // order: a pipeline rx->lkp->fwd deadlocks at startup if `fwd` is
        // rotated in before `rx` has ever produced. Order dependencies by a
        // topological rank of their producer thread (the dependency graph is
        // acyclic -- sema rejects cycles), breaking ties by id.
        let rank = topo_rank(analysis);
        let mut ordered: Vec<&memsync_hic::Dependency> = analysis.dependencies.iter().collect();
        ordered.sort_by_key(|d| {
            (
                rank.get(d.producer.thread.as_str())
                    .copied()
                    .unwrap_or(usize::MAX),
                d.id.clone(),
            )
        });

        // Guarded addresses are globally unique across banks so the
        // simulator can route requests by address alone.
        for (next_addr, dep) in ordered.into_iter().enumerate() {
            if dep.consumers.len() >= (1 << COUNTER_WIDTH) {
                return Err(format!(
                    "dependency `{}` has {} consumers; the counter supports at most 15",
                    dep.id,
                    dep.consumers.len()
                ));
            }
            if dep.consumers.len() > 8 {
                return Err(format!(
                    "dependency `{}` has {} consumers; a wrapper bus carries at most 8                      pseudo-ports",
                    dep.id,
                    dep.consumers.len()
                ));
            }
            // Spill to a fresh bank when capacity (16 guarded words) or the
            // pseudo-port budget (8 per bus) would be exceeded.
            let new_consumers = dep
                .consumers
                .iter()
                .filter(|c| bank.consumer_port(&c.thread).is_none())
                .count();
            let new_producers = usize::from(bank.producer_port(&dep.producer.thread).is_none());
            let would_overflow = bank.guarded.len() == 16
                || bank.consumers.len() + new_consumers > 8
                || bank.producers.len() + new_producers > 8;
            if would_overflow && !bank.guarded.is_empty() {
                sync_banks.push(std::mem::replace(
                    &mut bank,
                    SyncBank {
                        name: format!("sync{}", sync_banks.len() + 1),
                        producers: Vec::new(),
                        consumers: Vec::new(),
                        guarded: Vec::new(),
                        service_order: Vec::new(),
                    },
                ));
            }
            // Register the producer pseudo-port.
            let p_idx = match bank.producer_port(&dep.producer.thread) {
                Some(i) => i,
                None => {
                    bank.producers.push(dep.producer.thread.clone());
                    bank.service_order.push(Vec::new());
                    bank.producers.len() - 1
                }
            };
            // Register consumer pseudo-ports in pragma order.
            let mut order_row = Vec::new();
            for c in &dep.consumers {
                let c_idx = match bank.consumer_port(&c.thread) {
                    Some(i) => i,
                    None => {
                        bank.consumers.push(c.thread.clone());
                        bank.consumers.len() - 1
                    }
                };
                if !order_row.contains(&c_idx) {
                    order_row.push(c_idx);
                }
            }
            // The service order of this producer extends with the new
            // dependency's consumers (first dependency wins slot order).
            for c in &order_row {
                if !bank.service_order[p_idx].contains(c) {
                    bank.service_order[p_idx].push(*c);
                }
            }
            let base_addr = next_addr as u32;
            bank.guarded.push(GuardedVar {
                producer_thread: dep.producer.thread.clone(),
                var: dep.producer.var.clone(),
                dep: dep.id.clone(),
                base_addr,
                dep_number: dep.consumers.len() as u8,
            });

            // Bindings: producer writes through D, consumers read through C.
            bindings
                .entry(dep.producer.thread.clone())
                .or_default()
                .place_guarded(
                    dep.producer.var.clone(),
                    PortClass::D,
                    base_addr,
                    None,
                    Some(dep.id.clone()),
                );
            for c in &dep.consumers {
                bindings.entry(c.thread.clone()).or_default().place_guarded(
                    dep.producer.var.clone(),
                    PortClass::C,
                    base_addr,
                    Some(dep.id.clone()),
                    None,
                );
            }
        }
        sync_banks.push(bank);
    }

    // ---- private banks: arrays and oversized variables through port A ----
    let mut private_banks = Vec::new();
    for thread in &program.threads {
        let mut vars = Vec::new();
        let mut next = 0u32;
        for decl in &thread.decls {
            let words = match decl.array_len {
                Some(n) => n,
                None => continue, // scalars stay in registers
            };
            if next + words > BANK_WORDS * 8 {
                return Err(format!(
                    "thread `{}` private data exceeds the bank budget",
                    thread.name
                ));
            }
            vars.push((decl.name.clone(), next, words));
            bindings
                .entry(thread.name.clone())
                .or_default()
                .place_in_memory(decl.name.clone(), PortClass::A, next);
            next += words;
        }
        if !vars.is_empty() {
            private_banks.push(PrivateBank {
                thread: thread.name.clone(),
                vars,
                used_words: next,
            });
        }
    }

    let _ = mag;
    Ok(AllocationPlan {
        sync_banks,
        private_banks,
        bindings,
    })
}

/// Topological rank of each thread in the producer->consumer dependency
/// graph (Kahn); threads with no dependency edges rank 0.
fn topo_rank(analysis: &Analysis) -> BTreeMap<&str, usize> {
    let mut nodes: Vec<&str> = Vec::new();
    let mut edges: Vec<(&str, &str)> = Vec::new();
    for d in &analysis.dependencies {
        if !nodes.contains(&d.producer.thread.as_str()) {
            nodes.push(&d.producer.thread);
        }
        for c in &d.consumers {
            if !nodes.contains(&c.thread.as_str()) {
                nodes.push(&c.thread);
            }
            edges.push((&d.producer.thread, &c.thread));
        }
    }
    let mut rank: BTreeMap<&str, usize> = BTreeMap::new();
    let mut remaining: Vec<&str> = nodes.clone();
    let mut level = 0usize;
    while !remaining.is_empty() {
        let ready: Vec<&str> = remaining
            .iter()
            .copied()
            .filter(|n| !edges.iter().any(|(p, c)| c == n && remaining.contains(p)))
            .collect();
        if ready.is_empty() {
            // Cycle (should have been rejected by sema); rank the rest flat.
            for n in &remaining {
                rank.insert(n, level);
            }
            break;
        }
        for n in &ready {
            rank.insert(n, level);
        }
        remaining.retain(|n| !ready.contains(n));
        level += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_hic::compile;

    const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn figure1_allocates_one_sync_bank() {
        let (program, analysis) = compile(FIGURE1).unwrap();
        let plan = allocate(&program, &analysis).unwrap();
        assert_eq!(plan.sync_banks.len(), 1);
        let bank = &plan.sync_banks[0];
        assert_eq!(bank.producers, vec!["t1".to_owned()]);
        assert_eq!(bank.consumers, vec!["t2".to_owned(), "t3".to_owned()]);
        assert_eq!(bank.guarded.len(), 1);
        assert_eq!(bank.guarded[0].dep_number, 2);
        assert_eq!(bank.service_order, vec![vec![0, 1]]);
    }

    #[test]
    fn figure1_bindings_assign_ports() {
        let (program, analysis) = compile(FIGURE1).unwrap();
        let plan = allocate(&program, &analysis).unwrap();
        let t1 = plan.binding_for("t1");
        assert!(matches!(
            t1.residency_of("x1"),
            memsync_synth::ir::Residency::Memory {
                port: PortClass::D,
                ..
            }
        ));
        let t2 = plan.binding_for("t2");
        assert!(matches!(
            t2.residency_of("x1"),
            memsync_synth::ir::Residency::Memory {
                port: PortClass::C,
                ..
            }
        ));
    }

    #[test]
    fn arrays_get_private_banks() {
        let (program, analysis) =
            compile("thread t() { int tbl[64], i; i = 1; tbl[i] = i; }").unwrap();
        let plan = allocate(&program, &analysis).unwrap();
        assert!(plan.sync_banks.is_empty());
        assert_eq!(plan.private_banks.len(), 1);
        assert_eq!(plan.private_banks[0].vars[0].2, 64);
        assert!(matches!(
            plan.binding_for("t").residency_of("tbl"),
            memsync_synth::ir::Residency::Memory {
                port: PortClass::A,
                ..
            }
        ));
    }

    #[test]
    fn distinct_guarded_addresses() {
        let src = r#"
            thread p () {
                int u, v;
                #consumer{m1,[c,x]} u = 1;
                #consumer{m2,[c,y]} v = 2;
            }
            thread c () {
                int x, y;
                #producer{m1,[p,u]} x = u;
                #producer{m2,[p,v]} y = v;
            }
        "#;
        let (program, analysis) = compile(src).unwrap();
        let plan = allocate(&program, &analysis).unwrap();
        let bank = &plan.sync_banks[0];
        assert_eq!(bank.guarded.len(), 2);
        assert_ne!(bank.guarded[0].base_addr, bank.guarded[1].base_addr);
        // One consumer thread serving both dependencies: one pseudo-port.
        assert_eq!(bank.consumers.len(), 1);
    }

    #[test]
    fn wrapper_spec_is_valid() {
        let (program, analysis) = compile(FIGURE1).unwrap();
        let plan = allocate(&program, &analysis).unwrap();
        plan.sync_banks[0].wrapper_spec().validate().unwrap();
    }
}
