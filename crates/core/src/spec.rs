//! Specifications shared by the two memory-organization generators.

use std::fmt;

/// Which of the paper's two organizations to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrganizationKind {
    /// §3.1 — arbitrated memory organization: CAM-backed dependency list,
    /// round-robin arbitration on the guarded read port, dynamic scheduling.
    Arbitrated,
    /// §3.2 — event-driven statically scheduled organization: modulo
    /// scheduling between producers and between the consumers of a
    /// producer, deterministic post-write timing.
    EventDriven,
}

impl fmt::Display for OrganizationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrganizationKind::Arbitrated => f.write_str("arbitrated"),
            OrganizationKind::EventDriven => f.write_str("event-driven"),
        }
    }
}

/// Parameters of one per-BRAM wrapper instance.
///
/// The defaults mirror the paper's experimental setup: a single 18 Kb BRAM
/// (512×36 view), a 10-bit guarded address space, a four-entry dependency
/// list, and one producer with a configurable number of consumer
/// pseudo-ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperSpec {
    /// Producer pseudo-ports multiplexed onto the write port (port D).
    pub producers: usize,
    /// Consumer pseudo-ports multiplexed onto the guarded read port
    /// (port C).
    pub consumers: usize,
    /// Dependency-list entries (guardable addresses in flight).
    pub deplist_entries: u32,
    /// Datapath width in bits.
    pub data_width: u32,
    /// Guarded address width in bits.
    pub addr_width: u32,
    /// Whether the background port B is exposed ("in our experiments we
    /// have not used port B").
    pub with_port_b: bool,
    /// Static consumer service order per producer, as consumer pseudo-port
    /// indices (used by the event-driven organization; defaults to
    /// `0..consumers` round order for every producer).
    pub service_order: Vec<Vec<usize>>,
}

impl WrapperSpec {
    /// One producer, `consumers` consumers — the paper's 1/2, 1/4, 1/8
    /// scenarios.
    pub fn single_producer(consumers: usize) -> Self {
        WrapperSpec {
            producers: 1,
            consumers,
            deplist_entries: 4,
            data_width: 32,
            addr_width: 9,
            with_port_b: false,
            service_order: vec![(0..consumers).collect()],
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec is unusable (no endpoints, oversized
    /// pseudo-port counts, malformed service order).
    pub fn validate(&self) -> Result<(), String> {
        if self.producers == 0 || self.consumers == 0 {
            return Err("wrapper needs at least one producer and one consumer".into());
        }
        if self.producers > 8 || self.consumers > 8 {
            return Err("the base architecture supports at most 8 pseudo-ports per bus".into());
        }
        if self.deplist_entries == 0 || self.deplist_entries > 16 {
            return Err("dependency list must have 1..=16 entries".into());
        }
        if self.service_order.len() != self.producers {
            return Err(format!(
                "service order has {} rows for {} producers",
                self.service_order.len(),
                self.producers
            ));
        }
        for (p, row) in self.service_order.iter().enumerate() {
            if row.is_empty() {
                return Err(format!("producer {p} has an empty service order"));
            }
            for &c in row {
                if c >= self.consumers {
                    return Err(format!(
                        "producer {p} service order names consumer {c} of {}",
                        self.consumers
                    ));
                }
            }
        }
        Ok(())
    }

    /// Module name used for generated wrappers.
    pub fn module_name(&self, kind: OrganizationKind) -> String {
        let k = match kind {
            OrganizationKind::Arbitrated => "arb",
            OrganizationKind::EventDriven => "evt",
        };
        format!("memsync_{k}_p{}c{}", self.producers, self.consumers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_producer_defaults_match_paper() {
        let s = WrapperSpec::single_producer(4);
        assert_eq!(s.producers, 1);
        assert_eq!(s.consumers, 4);
        assert_eq!(s.deplist_entries, 4);
        assert_eq!(s.addr_width, 9);
        assert!(!s.with_port_b);
        assert_eq!(s.service_order, vec![vec![0, 1, 2, 3]]);
        s.validate().expect("valid");
    }

    #[test]
    fn rejects_zero_consumers() {
        assert!(WrapperSpec::single_producer(0).validate().is_err());
    }

    #[test]
    fn rejects_too_many_pseudo_ports() {
        assert!(WrapperSpec::single_producer(9).validate().is_err());
    }

    #[test]
    fn rejects_bad_service_order() {
        let mut s = WrapperSpec::single_producer(2);
        s.service_order = vec![vec![0, 5]];
        assert!(s.validate().is_err());
        s.service_order = vec![];
        assert!(s.validate().is_err());
    }

    #[test]
    fn module_names_are_distinct() {
        let s = WrapperSpec::single_producer(2);
        assert_ne!(
            s.module_name(OrganizationKind::Arbitrated),
            s.module_name(OrganizationKind::EventDriven)
        );
    }
}
