//! End-to-end compilation flow: hic source → implemented system.
//!
//! Mirrors the design flow of §3: "describing an application in hic, from
//! which a RTL HDL description is generated. This RTL code is then fed into
//! standard synthesis, place, and route tools" — here, the `memsync-fpga`
//! implementation model.

use crate::alloc::{allocate, AllocationPlan};
use crate::report::SystemReport;
use crate::spec::OrganizationKind;
use memsync_fpga::report::implement;
use memsync_hic::sema::Analysis;
use memsync_hic::Program;
use memsync_rtl::netlist::Module;
use memsync_synth::fsm::Fsm;
use memsync_synth::opt::{OptLevel, PassReport};
use memsync_synth::schedule::Constraints;
use memsync_synth::synthesis::Synthesis;
use std::fmt;

/// Any failure along the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Front-end (lex/parse/sema) failure.
    Frontend(memsync_hic::CompileError),
    /// Allocation failure.
    Allocation(String),
    /// Organization generation failure.
    Generation(String),
    /// RTL code generation failure.
    Codegen(memsync_synth::codegen::CodegenError),
    /// Netlist validation failure.
    Validation(String),
    /// Timing analysis failure.
    Timing(memsync_fpga::timing::TimingError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Frontend(e) => write!(f, "front-end: {e}"),
            FlowError::Allocation(e) => write!(f, "allocation: {e}"),
            FlowError::Generation(e) => write!(f, "generation: {e}"),
            FlowError::Codegen(e) => write!(f, "codegen: {e}"),
            FlowError::Validation(e) => write!(f, "validation: {e}"),
            FlowError::Timing(e) => write!(f, "timing: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<memsync_hic::CompileError> for FlowError {
    fn from(e: memsync_hic::CompileError) -> Self {
        FlowError::Frontend(e)
    }
}

impl From<memsync_synth::codegen::CodegenError> for FlowError {
    fn from(e: memsync_synth::codegen::CodegenError) -> Self {
        FlowError::Codegen(e)
    }
}

impl From<memsync_fpga::timing::TimingError> for FlowError {
    fn from(e: memsync_fpga::timing::TimingError) -> Self {
        FlowError::Timing(e)
    }
}

/// The flow entry point (non-consuming builder).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_core::flow::FlowError> {
/// use memsync_core::{Compiler, OrganizationKind};
///
/// let system = Compiler::new(
///     "thread p() { int v; #consumer{m,[c,w]} v = 1; }
///      thread c() { int w; #producer{m,[p,v]} w = v; }",
/// )
/// .organization(OrganizationKind::Arbitrated)
/// .compile()?;
/// assert_eq!(system.fsms.len(), 2);
/// assert_eq!(system.wrapper_modules.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    source: String,
    organization: OrganizationKind,
    constraints: Constraints,
    opt: OptLevel,
    validate_netlists: bool,
}

impl Compiler {
    /// Starts a compilation from hic source text.
    pub fn new(source: impl Into<String>) -> Self {
        Compiler {
            source: source.into(),
            organization: OrganizationKind::Arbitrated,
            constraints: Constraints::default(),
            opt: OptLevel::O0,
            validate_netlists: true,
        }
    }

    /// Selects the memory organization ("the user can select different
    /// implementations based on constraints s/he sets").
    pub fn organization(&mut self, kind: OrganizationKind) -> &mut Self {
        self.organization = kind;
        self
    }

    /// Overrides the scheduling constraints.
    pub fn constraints(&mut self, constraints: Constraints) -> &mut Self {
        self.constraints = constraints;
        self
    }

    /// Selects the middle-end optimization level (default
    /// [`OptLevel::O0`]).
    pub fn opt(&mut self, level: OptLevel) -> &mut Self {
        self.opt = level;
        self
    }

    /// Disables structural netlist validation (for speed in sweeps).
    pub fn skip_validation(&mut self) -> &mut Self {
        self.validate_netlists = false;
        self
    }

    /// Runs the full flow.
    ///
    /// # Errors
    ///
    /// Returns the first [`FlowError`] along front-end → allocation →
    /// synthesis → generation → validation.
    pub fn compile(&self) -> Result<CompiledSystem, FlowError> {
        let (program, analysis) = memsync_hic::compile(&self.source)?;
        let plan = allocate(&program, &analysis).map_err(FlowError::Allocation)?;

        let mut fsms = Vec::new();
        let mut thread_modules = Vec::new();
        let mut pass_reports = Vec::new();
        for thread in &program.threads {
            let binding = plan.binding_for(&thread.name);
            let result = Synthesis::of(&program)
                .constraints(self.constraints)
                .binding(binding)
                .opt(self.opt)
                .thread(thread.name.as_str())
                .run()?;
            let fsm = result.fsm;
            pass_reports.push(result.pass_report);
            let module = memsync_synth::codegen::generate(&fsm)?;
            if self.validate_netlists {
                memsync_rtl::validate::validate(&module).map_err(|errs| {
                    FlowError::Validation(format!(
                        "thread `{}`: {}",
                        thread.name,
                        errs.iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ))
                })?;
            }
            fsms.push(fsm);
            thread_modules.push(module);
        }

        let mut wrapper_modules = Vec::new();
        for bank in &plan.sync_banks {
            let spec = bank.wrapper_spec();
            let module = match self.organization {
                OrganizationKind::Arbitrated => crate::arbitrated::generate(&spec),
                OrganizationKind::EventDriven => crate::event_driven::generate(&spec),
            }
            .map_err(FlowError::Generation)?;
            if self.validate_netlists {
                memsync_rtl::validate::validate(&module).map_err(|errs| {
                    FlowError::Validation(format!(
                        "wrapper `{}`: {}",
                        module.name,
                        errs.iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ))
                })?;
            }
            wrapper_modules.push(module);
        }

        Ok(CompiledSystem {
            program,
            analysis,
            plan,
            organization: self.organization,
            fsms,
            pass_reports,
            thread_modules,
            wrapper_modules,
        })
    }
}

/// Everything the flow produces for one application.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    /// The parsed program.
    pub program: Program,
    /// Semantic analysis results.
    pub analysis: Analysis,
    /// Memory allocation.
    pub plan: AllocationPlan,
    /// Organization used for the sync banks.
    pub organization: OrganizationKind,
    /// Synthesized thread FSMs (executed by `memsync-sim`).
    pub fsms: Vec<Fsm>,
    /// Middle-end pass reports, parallel to [`CompiledSystem::fsms`].
    pub pass_reports: Vec<PassReport>,
    /// Thread RTL modules.
    pub thread_modules: Vec<Module>,
    /// Wrapper RTL modules (one per sync bank).
    pub wrapper_modules: Vec<Module>,
}

impl CompiledSystem {
    /// FSM of a thread by name.
    pub fn fsm(&self, thread: &str) -> Option<&Fsm> {
        self.fsms.iter().find(|f| f.thread == thread)
    }

    /// Middle-end report of a thread by name.
    pub fn pass_report(&self, thread: &str) -> Option<&PassReport> {
        self.pass_reports.iter().find(|r| r.thread == thread)
    }

    /// Emits the whole system as Verilog (one module per thread + wrapper).
    pub fn verilog(&self) -> String {
        self.thread_modules
            .iter()
            .chain(self.wrapper_modules.iter())
            .map(memsync_rtl::verilog::emit)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Emits the whole system as VHDL.
    pub fn vhdl(&self) -> String {
        self.thread_modules
            .iter()
            .chain(self.wrapper_modules.iter())
            .map(memsync_rtl::vhdl::emit)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Implements every module (area + timing) and assembles the system
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates timing analysis failures.
    pub fn implement(&self) -> Result<SystemReport, FlowError> {
        let mut threads = Vec::new();
        for m in &self.thread_modules {
            threads.push(implement(m)?);
        }
        let mut wrappers = Vec::new();
        for m in &self.wrapper_modules {
            wrappers.push(implement(m)?);
        }
        Ok(SystemReport { threads, wrappers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn figure1_compiles_under_both_organizations() {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let system = Compiler::new(FIGURE1).organization(kind).compile().unwrap();
            assert_eq!(system.fsms.len(), 3);
            assert_eq!(system.wrapper_modules.len(), 1);
            let report = system.implement().unwrap();
            assert!(report.total_slices() > 0);
            assert!(report.fmax_mhz() > 50.0);
        }
    }

    #[test]
    fn verilog_contains_all_modules() {
        let system = Compiler::new(FIGURE1).compile().unwrap();
        let v = system.verilog();
        assert!(v.contains("module thread_t1"));
        assert!(v.contains("module thread_t2"));
        assert!(v.contains("module thread_t3"));
        assert!(v.contains("module memsync_arb_p1c2"));
    }

    #[test]
    fn vhdl_emission_works() {
        let system = Compiler::new(FIGURE1).compile().unwrap();
        let v = system.vhdl();
        assert!(v.contains("entity thread_t1"));
        assert!(v.contains("entity memsync_arb_p1c2"));
    }

    #[test]
    fn opt_level_reports_and_preserves_dependencies() {
        let o0 = Compiler::new(FIGURE1).compile().unwrap();
        let o1 = Compiler::new(FIGURE1).opt(OptLevel::O1).compile().unwrap();
        assert_eq!(o0.fsms.len(), o1.fsms.len());
        for (a, b) in o0.fsms.iter().zip(o1.fsms.iter()) {
            assert_eq!(a.dependencies(), b.dependencies(), "thread {}", a.thread);
            assert!(
                b.states.len() <= a.states.len(),
                "thread {}: O1 grew the FSM",
                a.thread
            );
        }
        let report = o1.pass_report("t1").expect("report for t1");
        assert_eq!(report.level, OptLevel::O1);
        assert!(report.states_before >= report.states_after);
        assert!(o0.pass_report("t1").unwrap().ops_removed() == 0);
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = Compiler::new("thread t() {").compile().unwrap_err();
        assert!(matches!(err, FlowError::Frontend(_)));
    }

    #[test]
    fn program_without_dependencies_has_no_wrappers() {
        let system = Compiler::new("thread t() { int a; a = 1; }")
            .compile()
            .unwrap();
        assert!(system.wrapper_modules.is_empty());
        assert!(system.plan.sync_banks.is_empty());
    }
}
