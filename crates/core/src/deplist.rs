//! The dependency list of §3.1.
//!
//! "Each entry in the list has two parts. The first part contains a
//! dependency number, which is the number of threads that are dependent on
//! this producer. … The second part of the entry is the base address of the
//! data structure in BRAM." The list is CAM-searched by address; it is
//! populated at configuration time from the static analysis, and producers
//! re-arm an entry's counter by writing through port D.
//!
//! The behavioral model here is the single source of truth for the
//! simulator; the hardware structure is the `Cam` macro instantiated by
//! [`crate::arbitrated`].

/// Counter width per entry (up to 15 consumers per dependency).
pub const COUNTER_WIDTH: u32 = 4;

/// One dependency-list entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Guarded base address in the BRAM.
    pub base_addr: u32,
    /// Consumers that must read after each producer write (the configured
    /// dependency number).
    pub dep_number: u8,
    /// Remaining consumer reads before the produce–consume cycle completes.
    pub remaining: u8,
    /// Whether a producer write has armed the entry (reads before the first
    /// write block).
    pub armed: bool,
}

/// The configuration-time populated dependency list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyList {
    entries: Vec<Entry>,
    capacity: usize,
}

/// Outcome of a guarded producer write attempt.
///
/// The paper's guarded locations have *sampling* semantics: a producer
/// write is always accepted when the address is listed, even if the
/// previous value has unconsumed reads outstanding — the old value is
/// silently superseded. [`WriteOutcome::Accepted`] makes that overwrite
/// explicit so the simulator can count it (the `lost_updates` detector)
/// instead of losing data silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// No matching entry: the address is not guarded, write refused (§3.1).
    Rejected,
    /// The entry was re-armed.
    Accepted {
        /// The previous produce–consume cycle was still open: consumers had
        /// not drained the counter, and their pending value is now gone.
        overwrote_unconsumed: bool,
    },
}

impl WriteOutcome {
    /// Whether the write was accepted (an entry matched).
    pub fn accepted(self) -> bool {
        matches!(self, WriteOutcome::Accepted { .. })
    }

    /// Whether the write destroyed a value with outstanding consumer reads.
    pub fn lost_update(self) -> bool {
        matches!(
            self,
            WriteOutcome::Accepted {
                overwrote_unconsumed: true
            }
        )
    }
}

/// Outcome of a guarded read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Address is guarded and data is available; the counter decremented.
    Granted {
        /// Reads still owed after this one.
        remaining: u8,
    },
    /// Address is guarded but the producer has not written yet (or all
    /// reads of this cycle are consumed); the request blocks.
    Blocked,
    /// Address is not in the list — not a guarded address.
    Unguarded,
}

impl DependencyList {
    /// Creates an empty list with a hardware capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 16.
    pub fn new(capacity: usize) -> Self {
        assert!(
            (1..=16).contains(&capacity),
            "dependency list capacity 1..=16"
        );
        DependencyList {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are populated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hardware capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Populates an entry at configuration time.
    ///
    /// # Errors
    ///
    /// Fails when capacity is exhausted, the address is already guarded, or
    /// the dependency number does not fit the counter.
    pub fn configure(&mut self, base_addr: u32, dep_number: u8) -> Result<(), String> {
        if self.entries.len() == self.capacity {
            return Err(format!("dependency list full ({} entries)", self.capacity));
        }
        if dep_number == 0 || u32::from(dep_number) >= (1 << COUNTER_WIDTH) {
            return Err(format!(
                "dependency number {dep_number} out of range 1..=15"
            ));
        }
        if self.lookup(base_addr).is_some() {
            return Err(format!("address {base_addr:#x} already guarded"));
        }
        self.entries.push(Entry {
            base_addr,
            dep_number,
            remaining: 0,
            armed: false,
        });
        Ok(())
    }

    /// CAM search by address.
    pub fn lookup(&self, addr: u32) -> Option<&Entry> {
        self.entries.iter().find(|e| e.base_addr == addr)
    }

    /// Producer write through port D: allowed only when a matching entry
    /// exists with dep_number > 0 (§3.1); re-arms the counter.
    ///
    /// Returns whether the write was accepted. Overwrite-blind convenience
    /// wrapper around [`DependencyList::producer_write_checked`] — callers
    /// that must account for lost updates (the simulator's guarded-write
    /// path) use the checked form.
    pub fn producer_write(&mut self, addr: u32) -> bool {
        self.producer_write_checked(addr).accepted()
    }

    /// The counted guarded-write helper: like
    /// [`DependencyList::producer_write`], but reports whether the re-arm
    /// overwrote a value whose consumers had not all read yet
    /// ([`WriteOutcome::lost_update`]). Every guarded overwrite in the
    /// system flows through here — there is no other path that re-arms an
    /// entry.
    pub fn producer_write_checked(&mut self, addr: u32) -> WriteOutcome {
        match self.entries.iter_mut().find(|e| e.base_addr == addr) {
            Some(e) if e.dep_number > 0 => {
                let overwrote_unconsumed = e.armed && e.remaining > 0;
                e.remaining = e.dep_number;
                e.armed = true;
                WriteOutcome::Accepted {
                    overwrote_unconsumed,
                }
            }
            _ => WriteOutcome::Rejected,
        }
    }

    /// Consumer read through port C: granted when the entry is armed with
    /// remaining reads; decrements the counter, completing the
    /// produce–consume cycle at zero ("ending of the need for the address
    /// to be guarded" until the next write).
    pub fn consumer_read(&mut self, addr: u32) -> ReadOutcome {
        match self.entries.iter_mut().find(|e| e.base_addr == addr) {
            None => ReadOutcome::Unguarded,
            Some(e) => {
                if e.armed && e.remaining > 0 {
                    e.remaining -= 1;
                    if e.remaining == 0 {
                        e.armed = false;
                    }
                    ReadOutcome::Granted {
                        remaining: e.remaining,
                    }
                } else {
                    ReadOutcome::Blocked
                }
            }
        }
    }

    /// Whether a produce–consume cycle is currently open for the address.
    pub fn is_pending(&self, addr: u32) -> bool {
        self.lookup(addr)
            .is_some_and(|e| e.armed && e.remaining > 0)
    }

    /// Number of entries with an open produce–consume cycle (armed with
    /// reads still owed) — the instantaneous occupancy the trace layer
    /// tracks as a high-water mark.
    pub fn occupancy(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.armed && e.remaining > 0)
            .count()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_then_full_cycle() {
        let mut dl = DependencyList::new(4);
        dl.configure(0x10, 2).unwrap();
        // Reads before any write block.
        assert_eq!(dl.consumer_read(0x10), ReadOutcome::Blocked);
        // Producer arms the entry.
        assert!(dl.producer_write(0x10));
        assert!(dl.is_pending(0x10));
        // Two consumer reads drain it.
        assert_eq!(
            dl.consumer_read(0x10),
            ReadOutcome::Granted { remaining: 1 }
        );
        assert_eq!(
            dl.consumer_read(0x10),
            ReadOutcome::Granted { remaining: 0 }
        );
        assert!(!dl.is_pending(0x10));
        // Third read blocks until the next write.
        assert_eq!(dl.consumer_read(0x10), ReadOutcome::Blocked);
        assert!(dl.producer_write(0x10));
        assert_eq!(
            dl.consumer_read(0x10),
            ReadOutcome::Granted { remaining: 1 }
        );
    }

    #[test]
    fn occupancy_tracks_open_cycles() {
        let mut dl = DependencyList::new(4);
        dl.configure(0x10, 2).unwrap();
        dl.configure(0x20, 1).unwrap();
        assert_eq!(dl.occupancy(), 0);
        dl.producer_write(0x10);
        assert_eq!(dl.occupancy(), 1);
        dl.producer_write(0x20);
        assert_eq!(dl.occupancy(), 2);
        dl.consumer_read(0x20);
        assert_eq!(dl.occupancy(), 1, "drained entry closes");
    }

    #[test]
    fn unguarded_addresses_pass_through() {
        let mut dl = DependencyList::new(4);
        dl.configure(0x10, 1).unwrap();
        assert_eq!(dl.consumer_read(0x99), ReadOutcome::Unguarded);
    }

    #[test]
    fn write_to_unlisted_address_rejected() {
        let mut dl = DependencyList::new(4);
        assert!(
            !dl.producer_write(0x44),
            "§3.1: write needs a matching entry"
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut dl = DependencyList::new(2);
        dl.configure(1, 1).unwrap();
        dl.configure(2, 1).unwrap();
        assert!(dl.configure(3, 1).is_err());
    }

    #[test]
    fn duplicate_address_rejected() {
        let mut dl = DependencyList::new(4);
        dl.configure(7, 1).unwrap();
        assert!(dl.configure(7, 2).is_err());
    }

    #[test]
    fn dep_number_range_checked() {
        let mut dl = DependencyList::new(4);
        assert!(dl.configure(1, 0).is_err());
        assert!(dl.configure(1, 16).is_err());
        assert!(dl.configure(1, 15).is_ok());
    }

    #[test]
    fn checked_write_reports_overwrite_of_unconsumed_value() {
        let mut dl = DependencyList::new(4);
        dl.configure(0x30, 2).unwrap();
        // First write of a cycle: nothing pending, no loss.
        assert_eq!(
            dl.producer_write_checked(0x30),
            WriteOutcome::Accepted {
                overwrote_unconsumed: false
            }
        );
        // Re-write before any consumer read: the pending value is lost.
        assert!(dl.producer_write_checked(0x30).lost_update());
        // Partially drained still counts: one of two reads outstanding.
        dl.consumer_read(0x30);
        assert!(dl.producer_write_checked(0x30).lost_update());
        // Fully drained: the next write opens a fresh cycle cleanly.
        dl.consumer_read(0x30);
        dl.consumer_read(0x30);
        assert!(!dl.producer_write_checked(0x30).lost_update());
        // Unlisted addresses are rejected, never counted as lost.
        let out = dl.producer_write_checked(0x99);
        assert_eq!(out, WriteOutcome::Rejected);
        assert!(!out.accepted() && !out.lost_update());
    }

    #[test]
    fn rewrite_before_drain_rearms() {
        // A second producer write before all consumers read re-arms the
        // counter (the new value supersedes; no rollback per the paper).
        let mut dl = DependencyList::new(4);
        dl.configure(0x20, 3).unwrap();
        assert!(dl.producer_write(0x20));
        assert_eq!(
            dl.consumer_read(0x20),
            ReadOutcome::Granted { remaining: 2 }
        );
        assert!(dl.producer_write(0x20));
        assert_eq!(
            dl.consumer_read(0x20),
            ReadOutcome::Granted { remaining: 2 }
        );
    }
}
