//! Parametric round-robin arbiter, as netlist generator and as behavioral
//! model.
//!
//! §3.1: "we have implemented a simple round robin arbitration scheme" for
//! the pseudo-ports sharing the guarded read port. The generator builds a
//! rotating-priority encoder whose LUT cost grows with the number of
//! requesters (the source of the Table 1 LUT growth); the behavioral model
//! is the single source of truth the simulator uses.

use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::netlist::NetId;

/// Fixed pointer width of the base architecture (supports up to 8
/// requesters — this fixed sizing is why the paper's flip-flop count stays
/// constant as consumers scale).
pub const POINTER_WIDTH: u32 = 3;

/// Behavioral round-robin arbiter state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    n: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 8 (the base architecture limit).
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=8).contains(&n),
            "round-robin arbiter supports 1..=8 requesters"
        );
        RoundRobin { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requesters (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The requester that currently holds priority.
    pub fn pointer(&self) -> usize {
        self.next
    }

    /// Grants one requester among `requests` (true = requesting), starting
    /// the search at the rotating pointer. Advances the pointer past the
    /// winner so every requester is served in turn.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        for k in 0..self.n {
            let i = (self.next + k) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Peeks at the winner without advancing the pointer.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        (0..self.n)
            .map(|k| (self.next + k) % self.n)
            .find(|&i| requests[i])
    }
}

/// Netlist outputs of [`generate_into`].
#[derive(Debug, Clone)]
pub struct ArbiterNets {
    /// One-hot grant per requester (combinational).
    pub grants: Vec<NetId>,
    /// Binary index of the winner ([`POINTER_WIDTH`] bits wide).
    pub index: NetId,
    /// Whether any requester won this cycle.
    pub any: NetId,
    /// Next pointer value to register (winner + 1 when `any`, else held).
    pub next_pointer: NetId,
}

/// Builds the rotating-priority arbiter combinationally inside an existing
/// module. `requests` are 1-bit nets; `pointer` is the current 3-bit
/// rotating pointer (caller registers `next_pointer` back into it).
pub fn generate_into(b: &mut ModuleBuilder, requests: &[NetId], pointer: NetId) -> ArbiterNets {
    let n = requests.len();
    assert!((1..=8).contains(&n), "arbiter supports 1..=8 requesters");

    // Grants are computed directly in requester space (no priority-space
    // index round-trip): requester `i` wins iff it requests and no
    // requester with a better rotating rank also requests. The rank of `x`
    // under pointer `p` is `(x + n - p) % n`; the set of pointer values for
    // which `j` outranks `i` is a compile-time constant, so `before_ij` is
    // just an OR of pointer decodes — the parallel form synthesis produces
    // for a rotating priority encoder.
    let ptr_is: Vec<NetId> = (0..n)
        .map(|p| {
            let pp = b.constant(p as u64, POINTER_WIDTH, "ptr_k");
            b.eq(pointer, pp, &format!("ptr_is{p}"))
        })
        .collect();
    let rank = |x: usize, p: usize| (x + n - p) % n;

    let mut grants: Vec<NetId> = Vec::with_capacity(n);
    for i in 0..n {
        let mut blocked_terms: Vec<NetId> = Vec::new();
        for (j, &req_j) in requests.iter().enumerate() {
            if j == i {
                continue;
            }
            let subset: Vec<NetId> = (0..n)
                .filter(|&p| rank(j, p) < rank(i, p))
                .map(|p| ptr_is[p])
                .collect();
            let term = match subset.len() {
                0 => continue, // j never outranks i
                len if len == n => req_j,
                1 => b.and(&[req_j, subset[0]], "blk"),
                _ => {
                    let before = b.or(&subset, "before");
                    b.and(&[req_j, before], "blk")
                }
            };
            blocked_terms.push(term);
        }
        let g = if blocked_terms.is_empty() {
            requests[i]
        } else {
            let blocked = if blocked_terms.len() == 1 {
                blocked_terms[0]
            } else {
                b.or(&blocked_terms, "blocked")
            };
            let nb = b.not(blocked, "nblk");
            b.and(&[requests[i], nb], &format!("grant{i}"))
        };
        grants.push(g);
    }
    let any = if n == 1 {
        requests[0]
    } else {
        b.or(requests, "any_grant")
    };

    // Winner index (drives only the pointer update): one-hot AND-OR of the
    // grant flags with their requester numbers.
    let index = {
        let mut masked: Vec<NetId> = Vec::with_capacity(n);
        for (i, g) in grants.iter().enumerate() {
            let ii = b.constant(i as u64, POINTER_WIDTH, "idx_i");
            let gmask = if POINTER_WIDTH == 1 {
                *g
            } else {
                let reps: Vec<NetId> = (0..POINTER_WIDTH).map(|_| *g).collect();
                b.concat(&reps, "g_mask")
            };
            masked.push(b.and(&[ii, gmask], "idx_masked"));
        }
        if masked.len() == 1 {
            masked[0]
        } else {
            b.or(&masked, "idx_onehot_or")
        }
    };

    // next_pointer = any ? (index + 1) mod n : pointer.
    let one = b.constant(1, POINTER_WIDTH, "one3");
    let inc = b.add(index, one, "ptr_inc");
    let wrapped = if n.is_power_of_two() && n > 1 {
        // Mask handles the wrap for power-of-two n.
        let mask = b.constant((n - 1) as u64, POINTER_WIDTH, "ptr_mask");
        b.and(&[inc, mask], "ptr_wrap")
    } else {
        let nn = b.constant(n as u64, POINTER_WIDTH, "n_const");
        let at_n = b.eq(inc, nn, "at_n");
        let zero = b.constant(0, POINTER_WIDTH, "zero3");
        b.mux(at_n, &[inc, zero], "ptr_wrap")
    };
    let next_pointer = b.mux(any, &[pointer, wrapped], "ptr_next");

    ArbiterNets {
        grants,
        index,
        any,
        next_pointer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_fpga::report::implement;
    use memsync_rtl::validate::validate;

    #[test]
    fn round_robin_is_fair() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        let mut order = Vec::new();
        for _ in 0..6 {
            order.push(rr.grant(&all).unwrap());
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(&[false, false, true, false]), Some(2));
        // Pointer moved past 2.
        assert_eq!(rr.grant(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn no_request_no_grant() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.grant(&[false, false]), None);
        assert_eq!(rr.pointer(), 0, "pointer holds with no grant");
    }

    #[test]
    fn peek_does_not_advance() {
        let rr = RoundRobin::new(2);
        assert_eq!(rr.peek(&[false, true]), Some(1));
        assert_eq!(rr.pointer(), 0);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn rejects_oversized() {
        let _ = RoundRobin::new(9);
    }

    fn arbiter_module(n: usize) -> memsync_rtl::netlist::Module {
        let mut b = ModuleBuilder::new(format!("rr{n}"));
        let reqs: Vec<NetId> = (0..n).map(|i| b.input(&format!("req{i}"), 1)).collect();
        let ptr = b.net("ptr", POINTER_WIDTH);
        let nets = generate_into(&mut b, &reqs, ptr);
        b.register_into(nets.next_pointer, ptr, 0);
        for (i, g) in nets.grants.iter().enumerate() {
            b.output(&format!("grant{i}"), *g);
        }
        b.output("index", nets.index);
        b.output("any", nets.any);
        b.finish()
    }

    #[test]
    fn generated_arbiter_validates() {
        for n in [1, 2, 4, 8] {
            let m = arbiter_module(n);
            validate(&m).unwrap_or_else(|e| panic!("n={n}: {e:?}"));
        }
    }

    #[test]
    fn generated_arbiter_area_grows_with_requesters() {
        let luts: Vec<u32> = [2usize, 4, 8]
            .iter()
            .map(|&n| implement(&arbiter_module(n)).unwrap().luts)
            .collect();
        assert!(luts[0] < luts[1] && luts[1] < luts[2], "{luts:?}");
    }

    #[test]
    fn generated_arbiter_ffs_are_pointer_only() {
        for n in [2usize, 4, 8] {
            let r = implement(&arbiter_module(n)).unwrap();
            assert_eq!(r.ffs, POINTER_WIDTH, "n={n}: fixed pointer register");
        }
    }
}
