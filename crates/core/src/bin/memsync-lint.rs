//! memsync-lint — static hazard analysis for hic programs.
//!
//! Usage: `memsync-lint [--json] [--unpaced] [--opt {0,1}] [--dump-passes] FILE...`
//!
//! Runs the `memsync_hic::hazards` pass over each file and prints one
//! report per file (human-readable, or one JSON document per line with
//! `--json`). By default `recv` statements are assumed paced (the
//! memsync-serve injection regime); `--unpaced` analyzes under
//! free-running arrivals instead — "what breaks if pacing is removed?".
//!
//! With `--opt 1` each hazard-clean file is additionally compiled through
//! the full flow at both optimization levels and the per-thread
//! synchronization surfaces (`Fsm::dependencies`) are compared: the
//! middle-end must not change which guarded variables a thread touches.
//! `--dump-passes` prints the middle-end pass report for every thread
//! (as JSON lines with `--json`).
//!
//! Exit status: 0 when every file is hazard-free, 1 when any hazard was
//! found, 2 on usage, I/O, compile errors, or an O0/O1 dependency-surface
//! mismatch.

use memsync_core::{Compiler, OptLevel};
use memsync_hic::hazards::{self, PacingAssumption};
use memsync_hic::Severity;
use std::process::ExitCode;

const USAGE: &str =
    "usage: memsync-lint [--json] [--unpaced] [--opt {0,1}] [--dump-passes] FILE...";

/// Everything the flag parser decides.
struct Options {
    json: bool,
    pacing: PacingAssumption,
    opt: OptLevel,
    dump_passes: bool,
}

fn main() -> ExitCode {
    let mut opts = Options {
        json: false,
        pacing: PacingAssumption::PacedArrivals,
        opt: OptLevel::O0,
        dump_passes: false,
    };
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--unpaced" => opts.pacing = PacingAssumption::FreeRunning,
            "--dump-passes" => opts.dump_passes = true,
            "--opt" => {
                let level = args.next().and_then(|v| v.parse::<OptLevel>().ok());
                match level {
                    Some(level) => opts.opt = level,
                    None => {
                        eprintln!("memsync-lint: --opt expects 0 or 1\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("memsync-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut worst: u8 = 0;
    for path in &files {
        let status = lint_file(path, &opts);
        worst = worst.max(status);
    }
    ExitCode::from(worst)
}

/// Lints one file; returns the exit status it alone would produce.
fn lint_file(path: &str, opts: &Options) -> u8 {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memsync-lint: {path}: {e}");
            return 2;
        }
    };
    match hazards::check_source(&source, opts.pacing) {
        Err(e) => {
            if opts.json {
                let doc = memsync_trace::Json::obj()
                    .with("file", memsync_trace::Json::Str(path.to_owned()))
                    .with("error", memsync_trace::Json::Str(e.to_string()));
                println!("{}", doc.render());
            } else {
                for d in e.diagnostics() {
                    eprintln!("{path}:{d}");
                }
            }
            2
        }
        Ok((report, diagnostics)) => {
            let errors = diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            if opts.json {
                let doc = report
                    .to_json()
                    .with("file", memsync_trace::Json::Str(path.to_owned()))
                    .with("compile_errors", errors.into());
                println!("{}", doc.render());
            } else {
                for d in diagnostics {
                    eprintln!("{path}:{d}");
                }
                for h in &report.hazards {
                    println!("{path}:{h}");
                }
                if report.is_clean() {
                    println!("{path}: clean ({} assumed)", report.pacing.as_str());
                }
            }
            let mut status = if !report.is_clean() {
                1
            } else if errors > 0 {
                2
            } else {
                0
            };
            if status == 0 && (opts.opt == OptLevel::O1 || opts.dump_passes) {
                status = status.max(check_middle_end(path, &source, opts));
            }
            status
        }
    }
}

/// Compiles `source` through the flow and — at `--opt 1` — checks that the
/// O0 and O1 synchronization surfaces agree. Returns an exit status.
fn check_middle_end(path: &str, source: &str, opts: &Options) -> u8 {
    let compiled = match Compiler::new(source).opt(opts.opt).compile() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("memsync-lint: {path}: flow: {e}");
            return 2;
        }
    };
    if opts.dump_passes {
        for r in &compiled.pass_reports {
            if opts.json {
                let doc = r
                    .to_json()
                    .with("file", memsync_trace::Json::Str(path.to_owned()));
                println!("{}", doc.render());
            } else {
                println!(
                    "{path}: thread `{}` [{}]: {} -> {} ops ({} guarded -> {}), \
                     {} reads forwarded, {} -> {} states{}",
                    r.thread,
                    r.level,
                    r.ops_before,
                    r.ops_after,
                    r.guarded_ops_before,
                    r.guarded_ops_after,
                    r.reads_forwarded,
                    r.states_before,
                    r.states_after,
                    if r.gated { " (gated)" } else { "" }
                );
            }
        }
    }
    if opts.opt != OptLevel::O1 {
        return 0;
    }
    let baseline = match Compiler::new(source).compile() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("memsync-lint: {path}: flow at O0: {e}");
            return 2;
        }
    };
    let mut status = 0;
    for (o0, o1) in baseline.fsms.iter().zip(compiled.fsms.iter()) {
        if o0.dependencies() != o1.dependencies() {
            eprintln!(
                "memsync-lint: {path}: thread `{}`: O1 changed the dependency \
                 surface ({:?} -> {:?})",
                o0.thread,
                o0.dependencies(),
                o1.dependencies()
            );
            status = 2;
        }
    }
    status
}
