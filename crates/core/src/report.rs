//! System-level implementation reports.

use memsync_fpga::report::ImplReport;
use std::fmt;

/// Area/timing report of a compiled system: thread modules plus wrapper
/// modules, with the paper's overhead ratio (§4: "the area overhead can
/// vary from 5-20%" of the core functionality).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Per thread-module reports.
    pub threads: Vec<ImplReport>,
    /// Per wrapper-module reports (the synchronization overhead).
    pub wrappers: Vec<ImplReport>,
}

impl SystemReport {
    /// Total slices across all modules.
    pub fn total_slices(&self) -> u32 {
        self.threads
            .iter()
            .chain(self.wrappers.iter())
            .map(|r| r.slices)
            .sum()
    }

    /// Slices of the core functionality (the thread logic).
    pub fn core_slices(&self) -> u32 {
        self.threads.iter().map(|r| r.slices).sum()
    }

    /// Slices of the synchronization wrappers.
    pub fn sync_slices(&self) -> u32 {
        self.wrappers.iter().map(|r| r.slices).sum()
    }

    /// Total BRAM count.
    pub fn total_brams(&self) -> u32 {
        self.threads
            .iter()
            .chain(self.wrappers.iter())
            .map(|r| r.brams)
            .sum()
    }

    /// Synchronization overhead relative to the core, as a fraction.
    pub fn overhead_fraction(&self) -> f64 {
        let core = self.core_slices();
        if core == 0 {
            0.0
        } else {
            f64::from(self.sync_slices()) / f64::from(core)
        }
    }

    /// Overall achievable clock: the slowest module limits the system.
    pub fn fmax_mhz(&self) -> f64 {
        self.threads
            .iter()
            .chain(self.wrappers.iter())
            .map(|r| r.timing.fmax_mhz)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system report:")?;
        for r in &self.threads {
            writeln!(f, "  [thread]  {r}")?;
        }
        for r in &self.wrappers {
            writeln!(f, "  [wrapper] {r}")?;
        }
        writeln!(
            f,
            "  total {} slices ({} core + {} sync, {:.1}% overhead), {} BRAM, {:.1} MHz",
            self.total_slices(),
            self.core_slices(),
            self.sync_slices(),
            self.overhead_fraction() * 100.0,
            self.total_brams(),
            self.fmax_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_fpga::TimingReport;

    fn report(slices: u32) -> ImplReport {
        ImplReport {
            module: "m".into(),
            luts: slices * 2,
            ffs: slices,
            slices,
            brams: 0,
            timing: TimingReport {
                critical_path_ns: 8.0,
                fmax_mhz: 125.0,
            },
        }
    }

    #[test]
    fn overhead_ratio() {
        let s = SystemReport {
            threads: vec![report(1000)],
            wrappers: vec![report(120)],
        };
        assert_eq!(s.core_slices(), 1000);
        assert_eq!(s.sync_slices(), 120);
        assert!((s.overhead_fraction() - 0.12).abs() < 1e-9);
        assert_eq!(s.total_slices(), 1120);
    }

    #[test]
    fn fmax_is_the_minimum() {
        let mut fast = report(10);
        fast.timing.fmax_mhz = 200.0;
        let slow = report(10);
        let s = SystemReport {
            threads: vec![fast],
            wrappers: vec![slow],
        };
        assert!((s.fmax_mhz() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn empty_core_has_zero_overhead() {
        let s = SystemReport {
            threads: vec![],
            wrappers: vec![report(10)],
        };
        assert_eq!(s.overhead_fraction(), 0.0);
    }
}
