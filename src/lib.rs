//! Facade crate re-exporting the `memsync` workspace.
//!
//! See the individual crates for detail:
//! [`hic`](memsync_hic), [`synth`](memsync_synth), [`rtl`](memsync_rtl),
//! [`fpga`](memsync_fpga), [`core`](memsync_core), [`sim`](memsync_sim),
//! [`netapp`](memsync_netapp), [`trace`](memsync_trace).
pub use memsync_core as core;
pub use memsync_fpga as fpga;
pub use memsync_hic as hic;
pub use memsync_netapp as netapp;
pub use memsync_rtl as rtl;
pub use memsync_sim as sim;
pub use memsync_synth as synth;
pub use memsync_trace as trace;
